package txn

import (
	"sync"
	"testing"
)

func TestEpochInitialState(t *testing.T) {
	r := NewRegistry(4)
	if got := r.Epoch(); got != 1 {
		t.Fatalf("initial epoch = %d, want 1", got)
	}
	// No worker announced: everything retired in the current epoch is
	// already reclaimable (bound must exceed the current epoch).
	if got := r.ReclaimBound(); got != 2 {
		t.Fatalf("idle ReclaimBound = %d, want 2", got)
	}
}

func TestEpochEnterExitBound(t *testing.T) {
	r := NewRegistry(4)
	r.EpochEnter(1)
	if got := r.ReclaimBound(); got != 1 {
		t.Fatalf("bound with worker 1 active = %d, want 1", got)
	}
	r.TryAdvanceEpoch(1)
	if got := r.Epoch(); got != 2 {
		t.Fatalf("epoch after advance = %d, want 2", got)
	}
	// Worker 1 still announces epoch 1, pinning the bound.
	r.EpochEnter(2)
	if got := r.ReclaimBound(); got != 1 {
		t.Fatalf("bound with stale announcement = %d, want 1", got)
	}
	r.EpochExit(1)
	if got := r.ReclaimBound(); got != 2 {
		t.Fatalf("bound after worker 1 exit = %d, want 2", got)
	}
	r.EpochExit(2)
	if got := r.ReclaimBound(); got != 3 {
		t.Fatalf("idle bound at epoch 2 = %d, want 3", got)
	}
}

func TestTryAdvanceEpochStaleSeen(t *testing.T) {
	r := NewRegistry(1)
	r.TryAdvanceEpoch(1) // 1 → 2
	r.TryAdvanceEpoch(1) // stale: no-op
	r.TryAdvanceEpoch(1) // stale: no-op
	if got := r.Epoch(); got != 2 {
		t.Fatalf("epoch = %d, want 2 (stale advances must not stack)", got)
	}
	r.TryAdvanceEpoch(2)
	if got := r.Epoch(); got != 3 {
		t.Fatalf("epoch = %d, want 3", got)
	}
}

// TestEpochAnnouncementIsLowerBound checks the reclamation invariant under
// concurrency: a worker's announcement, taken before an epoch read, never
// exceeds any epoch value the worker observes afterwards — so a retire
// tagged with a later-read epoch is always covered by the announcement.
func TestEpochAnnouncementIsLowerBound(t *testing.T) {
	r := NewRegistry(8)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for wid := uint16(1); wid <= 4; wid++ {
		wg.Add(1)
		go func(wid uint16) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.EpochEnter(wid)
				ann := r.ctxs[wid].epoch.Load()
				if tag := r.Epoch(); tag < ann {
					t.Errorf("worker %d: announced %d > later epoch read %d", wid, ann, tag)
				}
				r.EpochExit(wid)
			}
		}(wid)
	}
	for i := uint64(1); i < 2000; i++ {
		r.TryAdvanceEpoch(r.Epoch())
	}
	close(stop)
	wg.Wait()
}
