package txn

import "testing"

func TestSlotPoolAcquireRelease(t *testing.T) {
	p := NewSlotPool(1, 4)
	if p.Size() != 4 || p.Free() != 4 {
		t.Fatalf("size=%d free=%d, want 4/4", p.Size(), p.Free())
	}
	seen := map[uint16]bool{}
	for i := 0; i < 4; i++ {
		wid, ok := p.Acquire()
		if !ok {
			t.Fatalf("acquire %d failed", i)
		}
		if wid < 1 || wid > 4 || seen[wid] {
			t.Fatalf("bad wid %d (seen=%v)", wid, seen)
		}
		seen[wid] = true
	}
	if _, ok := p.Acquire(); ok {
		t.Fatal("acquire succeeded on exhausted pool")
	}
	p.Release(3)
	if wid, ok := p.Acquire(); !ok || wid != 3 {
		t.Fatalf("reacquire got %d/%v, want 3/true", wid, ok)
	}
}

func TestSlotPoolLowWidsFirst(t *testing.T) {
	p := NewSlotPool(1, 8)
	for want := uint16(1); want <= 8; want++ {
		wid, ok := p.Acquire()
		if !ok || wid != want {
			t.Fatalf("acquire got %d/%v, want %d", wid, ok, want)
		}
	}
}

func TestSlotPoolDoubleReleasePanics(t *testing.T) {
	p := NewSlotPool(1, 2)
	p.Acquire()
	p.Release(1)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	p.Release(1)
}
