package index

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/storage"
)

// benchKeys is the pre-populated key count for the read benches: large
// enough that the B+tree is a few levels deep and the hash chains are
// realistic, small enough to stay cache-resident like an OLTP hot set.
const benchKeys = 1 << 16

// benchReaders is the goroutine fan-out for the parallel read benches
// (×GOMAXPROCS), matching the 8-worker figure configurations.
const benchReaders = 8

func prepopulated(b *testing.B, mk func() Index) Index {
	b.Helper()
	idx := mk()
	rec := mkRecs(1)[0]
	for k := uint64(0); k < benchKeys; k++ {
		idx.Insert(k, rec)
	}
	b.ResetTimer()
	return idx
}

func benchImpls() map[string]func() Index {
	return map[string]func() Index{
		"hash":  func() Index { return NewHash(benchKeys) },
		"btree": func() Index { return NewBTree() },
	}
}

// BenchmarkGet — parallel point reads on a pre-populated index; the
// latch-free hot path this package exists for.
func BenchmarkGet(b *testing.B) {
	for name, mk := range benchImpls() {
		b.Run(name, func(b *testing.B) {
			idx := prepopulated(b, mk)
			b.SetParallelism(benchReaders)
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(1))
				for pb.Next() {
					if idx.Get(rng.Uint64()%benchKeys) == nil {
						b.Error("miss on present key")
					}
				}
			})
		})
	}
}

// BenchmarkGetWithWriter — parallel reads racing one writer that churns a
// disjoint key range, exercising the validation-retry path.
func BenchmarkGetWithWriter(b *testing.B) {
	for name, mk := range benchImpls() {
		b.Run(name, func(b *testing.B) {
			idx := prepopulated(b, mk)
			rec := mkRecs(1)[0]
			stop := make(chan struct{})
			go func() {
				k := uint64(benchKeys)
				for {
					select {
					case <-stop:
						return
					default:
					}
					idx.Insert(k, rec)
					idx.Remove(k)
					k = benchKeys + (k+1)%benchKeys
				}
			}()
			b.SetParallelism(benchReaders)
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(2))
				for pb.Next() {
					if idx.Get(rng.Uint64()%benchKeys) == nil {
						b.Error("miss on present key")
					}
				}
			})
			close(stop)
		})
	}
}

// BenchmarkInsert — parallel inserts of fresh keys (each goroutine owns a
// key region).
func BenchmarkInsert(b *testing.B) {
	for name, mk := range benchImpls() {
		b.Run(name, func(b *testing.B) {
			idx := mk()
			rec := mkRecs(1)[0]
			b.ResetTimer()
			b.SetParallelism(benchReaders)
			b.RunParallel(func(pb *testing.PB) {
				// Carve a private region per goroutine via a coarse stripe.
				base := uint64(rand.Int63()) << 20
				i := uint64(0)
				for pb.Next() {
					idx.Insert(base+i, rec)
					i++
				}
			})
		})
	}
}

// rwHash replicates the pre-seqlock read path as a pinned baseline:
// identical bucket/chain layout, but Get holds the stripe RWMutex read
// lock for the chain walk, the way the seed implementation did. Test-only
// — it exists so the latch-free speedup stays measurable in-repo.
type rwHash struct {
	buckets []atomic.Pointer[hashEntry]
	mask    uint64
	shift   uint
	mus     [hashStripes]sync.RWMutex
}

func newRWHash(expected int) *rwHash {
	h := NewHash(expected)
	return &rwHash{buckets: h.buckets, mask: h.mask, shift: h.shift}
}

func (h *rwHash) bucket(key uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> h.shift & h.mask
}

func (h *rwHash) Get(key uint64) *storage.Record {
	b := h.bucket(key)
	mu := &h.mus[b&(hashStripes-1)]
	mu.RLock()
	var rec *storage.Record
	for e := h.buckets[b].Load(); e != nil; e = e.next.Load() {
		if e.key.Load() == key {
			rec = e.rec.Load()
			break
		}
	}
	mu.RUnlock()
	return rec
}

func (h *rwHash) Insert(key uint64, rec *storage.Record) {
	b := h.bucket(key)
	mu := &h.mus[b&(hashStripes-1)]
	mu.Lock()
	e := &hashEntry{}
	e.key.Store(key)
	e.rec.Store(rec)
	e.next.Store(h.buckets[b].Load())
	h.buckets[b].Store(e)
	mu.Unlock()
}

func (h *rwHash) Remove(key uint64) {
	b := h.bucket(key)
	mu := &h.mus[b&(hashStripes-1)]
	mu.Lock()
	defer mu.Unlock()
	var prev *hashEntry
	for e := h.buckets[b].Load(); e != nil; e = e.next.Load() {
		if e.key.Load() == key {
			if prev == nil {
				h.buckets[b].Store(e.next.Load())
			} else {
				prev.next.Store(e.next.Load())
			}
			return
		}
		prev = e
	}
}

// BenchmarkGetMutexBaseline — the same parallel point-read workload as
// BenchmarkGet/hash against the RWMutex-striped baseline. The ratio of
// the two is the PR's headline number.
func BenchmarkGetMutexBaseline(b *testing.B) {
	h := newRWHash(benchKeys)
	rec := mkRecs(1)[0]
	for k := uint64(0); k < benchKeys; k++ {
		h.Insert(k, rec)
	}
	b.ResetTimer()
	b.SetParallelism(benchReaders)
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(1))
		for pb.Next() {
			if h.Get(rng.Uint64()%benchKeys) == nil {
				b.Error("miss on present key")
			}
		}
	})
}

// BenchmarkGetWithWriterMutexBaseline — reader/writer churn against the
// RWMutex baseline, counterpart to BenchmarkGetWithWriter/hash.
func BenchmarkGetWithWriterMutexBaseline(b *testing.B) {
	h := newRWHash(benchKeys)
	rec := mkRecs(1)[0]
	for k := uint64(0); k < benchKeys; k++ {
		h.Insert(k, rec)
	}
	stop := make(chan struct{})
	go func() {
		k := uint64(benchKeys)
		for {
			select {
			case <-stop:
				return
			default:
			}
			h.Insert(k, rec)
			h.Remove(k)
			k = benchKeys + (k+1)%benchKeys
		}
	}()
	b.ResetTimer()
	b.SetParallelism(benchReaders)
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(2))
		for pb.Next() {
			if h.Get(rng.Uint64()%benchKeys) == nil {
				b.Error("miss on present key")
			}
		}
	})
	close(stop)
}

// BenchmarkScan — range scans of ~64 keys on the ordered index.
func BenchmarkScan(b *testing.B) {
	bt := NewBTree()
	rec := mkRecs(1)[0]
	for k := uint64(0); k < benchKeys; k++ {
		bt.Insert(k, rec)
	}
	b.ResetTimer()
	b.SetParallelism(benchReaders)
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(3))
		for pb.Next() {
			from := rng.Uint64() % (benchKeys - 64)
			n := 0
			bt.Scan(from, from+63, func(uint64, *storage.Record) bool {
				n++
				return true
			})
			if n != 64 {
				b.Errorf("scan visited %d keys, want 64", n)
			}
		}
	})
}
