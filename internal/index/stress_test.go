package index

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/storage"
)

// lcg advances a 64-bit linear congruential generator. Shared by the
// stress writers and the sequential model replay so both see the same
// op streams.
func lcg(x uint64) uint64 { return x*6364136223846793005 + 1442695040888963407 }

// TestIndexConcurrentStress hammers each implementation with concurrent
// Get/Insert/Remove (plus Scan for ordered indexes) and then checks the
// surviving key set against a deterministic replay. Writers own disjoint
// key partitions (key % writers == id) so the final state is exact;
// readers and scanners run over the whole space and assert invariants
// that must hold at every instant.
func TestIndexConcurrentStress(t *testing.T) {
	const (
		writers      = 4
		readers      = 2
		opsPerWriter = 3000
		space        = 1 << 12
	)
	for name, mk := range impls() {
		t.Run(name, func(t *testing.T) {
			idx := mk()
			recs := mkRecs(space)
			var stop atomic.Bool
			var wgW, wgR sync.WaitGroup

			for w := 0; w < writers; w++ {
				wgW.Add(1)
				go func(id uint64) {
					defer wgW.Done()
					rng := id*2654435761 + 1
					for i := 0; i < opsPerWriter; i++ {
						rng = lcg(rng)
						key := (rng>>16)%(space/writers)*writers + id
						if rng&1 == 0 {
							idx.Insert(key, recs[key])
						} else {
							idx.Remove(key)
						}
					}
				}(uint64(w))
			}

			// Readers: Get must return nil or the one record ever mapped
			// to that key — never a neighbor's.
			for r := 0; r < readers; r++ {
				wgR.Add(1)
				go func(seed uint64) {
					defer wgR.Done()
					rng := seed + 99991
					for !stop.Load() {
						rng = lcg(rng)
						key := (rng >> 16) % space
						if got := idx.Get(key); got != nil && got != recs[key] {
							t.Errorf("Get(%d) returned a record from another key", key)
							return
						}
					}
				}(uint64(r))
			}

			// Scanner (ordered indexes only): keys strictly ascending and
			// every record matching its key, even mid-split.
			if rgr, ok := idx.(Ranger); ok {
				wgR.Add(1)
				go func() {
					defer wgR.Done()
					for !stop.Load() {
						last, first := uint64(0), true
						rgr.Scan(0, space-1, func(k uint64, rec *storage.Record) bool {
							if !first && k <= last {
								t.Errorf("scan out of order: %d after %d", k, last)
								return false
							}
							if rec != recs[k] {
								t.Errorf("scan key %d carries wrong record", k)
								return false
							}
							first, last = false, k
							return true
						})
					}
				}()
			}

			wgW.Wait()
			stop.Store(true)
			wgR.Wait()
			if t.Failed() {
				return
			}

			// Sequential replay of each writer's stream gives the model.
			model := make(map[uint64]bool)
			for w := 0; w < writers; w++ {
				rng := uint64(w)*2654435761 + 1
				for i := 0; i < opsPerWriter; i++ {
					rng = lcg(rng)
					key := (rng>>16)%(space/writers)*uint64(writers) + uint64(w)
					model[key] = rng&1 == 0
				}
			}
			live := 0
			for key, present := range model {
				got := idx.Get(key)
				if present {
					if got != recs[key] {
						t.Fatalf("key %d: expected present, Get = %v", key, got)
					}
					live++
				} else if got != nil {
					t.Fatalf("key %d: expected absent, Get returned a record", key)
				}
			}
			if idx.Len() != live {
				t.Fatalf("Len = %d, model has %d live keys", idx.Len(), live)
			}
		})
	}
}

// TestBTreeScanDuringSplitTorture runs a scanner in a tight loop while
// writers grow the tree through repeated leaf and root splits. Anchor
// keys (multiples of 3) are inserted up front: every scan must observe
// all of them, in order, regardless of how many splits happen mid-scan.
// Concurrently inserted filler keys may or may not appear — but never
// out of order and never duplicated.
func TestBTreeScanDuringSplitTorture(t *testing.T) {
	const (
		anchors = 2000 // keys 0, 3, 6, ... pre-inserted
		fillers = 4000 // keys ≡ 1, 2 (mod 3) inserted during the scans
		scans   = 40
	)
	tr := NewBTree()
	recs := mkRecs(3 * anchors)
	for i := 0; i < anchors; i++ {
		if !tr.Insert(uint64(3*i), recs[3*i]) {
			t.Fatalf("anchor insert %d failed", 3*i)
		}
	}

	var wg sync.WaitGroup
	var stop atomic.Bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Interleave two filler streams so inserts land all over the key
		// space and keep splitting interior nodes, not just the rightmost.
		rng := uint64(12345)
		for i := 0; i < fillers && !stop.Load(); i++ {
			rng = lcg(rng)
			k := (rng >> 16) % uint64(3*anchors)
			if k%3 == 0 {
				k++
			}
			tr.Insert(k, recs[k])
		}
	}()

	seen := make([]uint64, 0, 3*anchors)
	for s := 0; s < scans; s++ {
		seen = seen[:0]
		tr.Scan(0, uint64(3*anchors), func(k uint64, rec *storage.Record) bool {
			seen = append(seen, k)
			return true
		})
		// Strictly ascending ⇒ no duplicates, no reordering across the
		// leaf-chain hops a split inserts mid-scan.
		got := 0
		for i, k := range seen {
			if i > 0 && k <= seen[i-1] {
				t.Fatalf("scan %d: key %d not above predecessor %d", s, k, seen[i-1])
			}
			if k%3 == 0 {
				if k != uint64(3*got) {
					t.Fatalf("scan %d: anchor %d missing (saw %d)", s, 3*got, k)
				}
				got++
			}
		}
		if got != anchors {
			t.Fatalf("scan %d: observed %d/%d anchors", s, got, anchors)
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestBTreeVersionValidation exercises the OLC primitives a reader's
// correctness rests on: a captured stable version must fail validation
// after any mutation window, including a completed one.
func TestBTreeVersionValidation(t *testing.T) {
	tr := NewBTree()
	recs := mkRecs(4)
	tr.Insert(10, recs[0])
	nd := tr.root.Load()

	v := nd.stableVer()
	if v&1 != 0 {
		t.Fatalf("stable version is odd: %d", v)
	}
	if !nd.validate(v) {
		t.Fatal("validation failed with no intervening writer")
	}
	nd.beginMutate()
	if nd.validate(v) {
		t.Fatal("validation passed during a mutation window")
	}
	nd.endMutate()
	if nd.validate(v) {
		t.Fatal("validation passed across a completed mutation")
	}
	if nv := nd.stableVer(); nv != v+2 {
		t.Fatalf("version advanced by %d, want 2", nv-v)
	}

	// descend's captured leaf version obeys the same rule: a mutation
	// after the descent forces Get's retry path.
	lf, lv, ok := tr.descend(10)
	if !ok || !lf.leaf {
		t.Fatal("descend failed on a quiescent tree")
	}
	lf.beginMutate()
	lf.endMutate()
	if lf.validate(lv) {
		t.Fatal("leaf validation passed across a mutation")
	}
}

// TestBTreeRootSplitReaderRestart replays the one interleaving a per-node
// version cannot expose: a reader loads the root pointer, a root split
// swaps it out, and the reader then stabilizes the EX-root — whose version
// ends even, so every later validation passes even though the node now
// covers only keys below the pushed-up separator. The test parks a reader
// on the torn root (odd version), performs the root swap exactly as
// splitRootIfFull does, and releases; descend's root re-check must send
// the reader back to the new root instead of letting it miss the moved key.
func TestBTreeRootSplitReaderRestart(t *testing.T) {
	const rounds = 100
	for r := 0; r < rounds; r++ {
		tr := NewBTree()
		recs := mkRecs(btreeOrder)
		for i := 0; i < btreeOrder; i++ {
			tr.Insert(uint64(i), recs[i])
		}
		old := tr.root.Load()
		movedKey := uint64(btreeOrder - 1) // lands in the right sibling

		// Tear the root so a reader that has already captured it parks in
		// stableVer until the swap below is complete.
		old.mu.Lock()
		old.beginMutate()
		got := make(chan *storage.Record)
		go func() { got <- tr.Get(movedKey) }()
		for i := 0; i < 64; i++ {
			runtime.Gosched() // let the reader load old and hit the odd version
		}
		sep, sib := split(old)
		nr := &bnode{}
		nr.keys[0].Store(sep)
		nr.kids[0].Store(old)
		nr.kids[1].Store(sib)
		nr.n.Store(1)
		tr.root.Store(nr)
		old.endMutate()
		sib.mu.Unlock()
		old.mu.Unlock()

		if rec := <-got; rec != recs[movedKey] {
			t.Fatalf("round %d: Get(%d) = %v across a root split, want the inserted record", r, movedKey, rec)
		}
		// Document the hazard the re-check closes: the ex-root is even
		// again (validates cleanly) yet no longer holds the moved key.
		if v := old.ver.Load(); v&1 != 0 {
			t.Fatalf("round %d: ex-root left torn (version %d)", r, v)
		}
		if _, found := old.search(movedKey, int(old.n.Load())); found {
			t.Fatalf("round %d: ex-root still holds key %d after the split", r, movedKey)
		}
	}
}

// TestBTreeScanLatchedFallback checks both halves of the scan starvation
// fix: the invariant the fallback relies on (with the leaf latch held the
// version cannot move, so a snapshot at the current version always
// validates), and that a scanner makes progress against a writer mutating
// the scanned leaf in a tight loop.
func TestBTreeScanLatchedFallback(t *testing.T) {
	tr := NewBTree()
	recs := mkRecs(btreeOrder)
	const anchors = 8
	for i := 0; i < anchors; i++ {
		tr.Insert(uint64(2*i), recs[2*i]) // even anchors, odd keys churn
	}

	lf, _, ok := tr.descend(0)
	if !ok || !lf.leaf {
		t.Fatal("descend failed on a quiescent tree")
	}
	var c scanChunk
	lf.mu.Lock()
	okSnap := lf.snapshot(0, 2*anchors, lf.ver.Load(), &c)
	lf.mu.Unlock()
	if !okSnap {
		t.Fatal("snapshot failed validation under the leaf latch")
	}
	if c.n != anchors {
		t.Fatalf("latched snapshot copied %d entries, want %d", c.n, anchors)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() { // every op bumps the anchors' leaf version
			tr.Insert(1, recs[1])
			tr.Remove(1)
		}
	}()
	for s := 0; s < 200; s++ {
		seen := 0
		tr.Scan(0, 2*anchors, func(k uint64, rec *storage.Record) bool {
			if k%2 == 0 {
				if k != uint64(2*seen) {
					t.Errorf("scan %d: anchor %d missing (saw %d)", s, 2*seen, k)
					return false
				}
				seen++
			}
			return true
		})
		if seen != anchors {
			t.Fatalf("scan %d: observed %d/%d anchors under writer churn", s, seen, anchors)
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestHashReaderRestartCounted forces the hash read path into its
// restart loop: with a stripe held odd by a writer, a concurrent Get
// must retry (bumping the restart counter), fall back to the stripe
// mutex, block until the writer finishes, and still return the record.
func TestHashReaderRestartCounted(t *testing.T) {
	h := NewHash(64)
	recs := mkRecs(1)
	const key = 7
	h.Insert(key, recs[0])

	before := RestartCount()
	s := h.stripe(h.hash(key))
	s.beginWrite()

	got := make(chan *storage.Record)
	go func() { got <- h.Get(key) }()

	// The reader spins through its optimistic attempts (each counted)
	// and then blocks on the stripe mutex; wait for the counter to show
	// the retries before letting it through.
	for RestartCount() < before+hashReadSpinLimit {
		runtime.Gosched()
	}
	select {
	case <-got:
		t.Fatal("Get returned while the stripe was write-locked")
	default:
	}
	s.endWrite()
	if rec := <-got; rec != recs[0] {
		t.Fatalf("Get after writer = %v, want the inserted record", rec)
	}
	if n := RestartCount() - before; n < hashReadSpinLimit {
		t.Fatalf("restart counter advanced by %d, want ≥ %d", n, hashReadSpinLimit)
	}
}
