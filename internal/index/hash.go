package index

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/storage"
)

const hashStripes = 256 // power of two

// hashReadSpinLimit bounds optimistic read retries before a reader falls
// back to the stripe mutex, so writer churn cannot starve a reader.
const hashReadSpinLimit = 8

// Hash is a chained hash table whose reads are latch-free: each stripe
// carries a seqlock version word, bucket heads and chain links are
// published atomically, and Get is a pair of atomic loads around an
// unsynchronized traversal, retried when the stripe version moved. The
// stripe mutex serializes writers only; readers never touch it except on
// the starvation fallback. The bucket count is fixed at construction
// (sized from the expected cardinality), as in DBx1000; chains absorb
// overflow.
type Hash struct {
	buckets []atomic.Pointer[hashEntry]
	mask    uint64
	shift   uint
	stripes [hashStripes]hashStripe
	count   atomic.Int64
}

// hashStripe is one seqlock: ver is odd while a writer is mutating the
// stripe's buckets; mu serializes the writers. Padded to a cache line so
// neighboring stripes do not false-share.
type hashStripe struct {
	ver atomic.Uint64
	mu  sync.Mutex
	_   [64 - 16]byte
}

// beginWrite enters the stripe's write-side critical section.
func (s *hashStripe) beginWrite() {
	s.mu.Lock()
	s.ver.Add(1) // odd: readers will retry
}

// endWrite publishes the mutation and reopens optimistic reads.
func (s *hashStripe) endWrite() {
	s.ver.Add(1) // even again
	s.mu.Unlock()
}

// hashEntry is immutable except for next, which writers republish
// atomically when unlinking (readers mid-chain keep a consistent view:
// an unlinked entry's next still points into the live chain).
type hashEntry struct {
	key  uint64
	rec  *storage.Record
	next atomic.Pointer[hashEntry]
}

// NewHash creates a hash index sized for about expected keys.
func NewHash(expected int) *Hash {
	if expected < 16 {
		expected = 16
	}
	n := 1 << bits.Len(uint(expected-1)) // next power of two ≥ expected
	return &Hash{
		buckets: make([]atomic.Pointer[hashEntry], n),
		mask:    uint64(n - 1),
		shift:   uint(64 - bits.Len(uint(n-1))),
	}
}

// hash mixes the key with the 64-bit golden ratio (Fibonacci hashing).
func (h *Hash) hash(key uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> h.shift & h.mask
}

func (h *Hash) stripe(b uint64) *hashStripe {
	return &h.stripes[b&(hashStripes-1)]
}

// lookup traverses bucket b for key. Safe to run concurrently with
// writers: heads and links are atomic, entries are never mutated after
// publication.
func (h *Hash) lookup(b, key uint64) *storage.Record {
	for e := h.buckets[b].Load(); e != nil; e = e.next.Load() {
		if e.key == key {
			return e.rec
		}
	}
	return nil
}

// Get implements Index. The fast path is two atomic loads around the
// chain walk; a version mismatch (concurrent stripe writer) retries, and
// sustained churn falls back to the stripe mutex.
func (h *Hash) Get(key uint64) *storage.Record {
	b := h.hash(key)
	s := h.stripe(b)
	for i := 0; i < hashReadSpinLimit; i++ {
		v := s.ver.Load()
		if v&1 != 0 { // writer in progress
			countRestart()
			storage.Yield(i)
			continue
		}
		rec := h.lookup(b, key)
		if s.ver.Load() == v {
			return rec
		}
		countRestart()
	}
	// Starvation fallback: read under the writer mutex.
	s.mu.Lock()
	rec := h.lookup(b, key)
	s.mu.Unlock()
	return rec
}

// Insert implements Index.
func (h *Hash) Insert(key uint64, rec *storage.Record) bool {
	b := h.hash(key)
	s := h.stripe(b)
	s.mu.Lock()
	for e := h.buckets[b].Load(); e != nil; e = e.next.Load() {
		if e.key == key {
			s.mu.Unlock()
			return false
		}
	}
	e := &hashEntry{key: key, rec: rec}
	e.next.Store(h.buckets[b].Load())
	// Publishing a fully built entry at the head is a single atomic
	// store; no version bump is needed for reader safety, and skipping it
	// keeps concurrent readers of this stripe from retrying.
	h.buckets[b].Store(e)
	s.mu.Unlock()
	h.count.Add(1)
	return true
}

// Remove implements Index. Unlinking rewrites a predecessor's next, so
// the stripe version is bumped around it: a reader that was standing on
// the unlinked entry still sees a valid chain, but its Get revalidates
// and retries rather than returning a just-deleted record as current.
func (h *Hash) Remove(key uint64) bool {
	b := h.hash(key)
	s := h.stripe(b)
	s.beginWrite()
	var prev *hashEntry
	for e := h.buckets[b].Load(); e != nil; e = e.next.Load() {
		if e.key == key {
			next := e.next.Load()
			if prev == nil {
				h.buckets[b].Store(next)
			} else {
				prev.next.Store(next)
			}
			s.endWrite()
			h.count.Add(-1)
			return true
		}
		prev = e
	}
	s.endWrite()
	return false
}

// Len implements Index.
func (h *Hash) Len() int { return int(h.count.Load()) }
