package index

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/storage"
)

const hashStripes = 256 // power of two

// Hash is a chained hash table with striped reader/writer locks. The bucket
// count is fixed at construction (sized from the expected cardinality), as
// in DBx1000; chains absorb overflow.
type Hash struct {
	buckets []*hashEntry
	mask    uint64
	shift   uint
	stripes [hashStripes]sync.RWMutex
	count   atomic.Int64
}

type hashEntry struct {
	key  uint64
	rec  *storage.Record
	next *hashEntry
}

// NewHash creates a hash index sized for about expected keys.
func NewHash(expected int) *Hash {
	if expected < 16 {
		expected = 16
	}
	n := 1 << bits.Len(uint(expected-1)) // next power of two ≥ expected
	return &Hash{
		buckets: make([]*hashEntry, n),
		mask:    uint64(n - 1),
		shift:   uint(64 - bits.Len(uint(n-1))),
	}
}

// hash mixes the key with the 64-bit golden ratio (Fibonacci hashing).
func (h *Hash) hash(key uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> h.shift & h.mask
}

func (h *Hash) stripe(b uint64) *sync.RWMutex {
	return &h.stripes[b&(hashStripes-1)]
}

// Get implements Index.
func (h *Hash) Get(key uint64) *storage.Record {
	b := h.hash(key)
	mu := h.stripe(b)
	mu.RLock()
	for e := h.buckets[b]; e != nil; e = e.next {
		if e.key == key {
			mu.RUnlock()
			return e.rec
		}
	}
	mu.RUnlock()
	return nil
}

// Insert implements Index.
func (h *Hash) Insert(key uint64, rec *storage.Record) bool {
	b := h.hash(key)
	mu := h.stripe(b)
	mu.Lock()
	for e := h.buckets[b]; e != nil; e = e.next {
		if e.key == key {
			mu.Unlock()
			return false
		}
	}
	h.buckets[b] = &hashEntry{key: key, rec: rec, next: h.buckets[b]}
	mu.Unlock()
	h.count.Add(1)
	return true
}

// Remove implements Index.
func (h *Hash) Remove(key uint64) bool {
	b := h.hash(key)
	mu := h.stripe(b)
	mu.Lock()
	p := &h.buckets[b]
	for e := *p; e != nil; e = e.next {
		if e.key == key {
			*p = e.next
			mu.Unlock()
			h.count.Add(-1)
			return true
		}
		p = &e.next
	}
	mu.Unlock()
	return false
}

// Len implements Index.
func (h *Hash) Len() int { return int(h.count.Load()) }
