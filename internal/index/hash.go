package index

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/storage"
)

const hashStripes = 256 // power of two

// hashReadSpinLimit bounds optimistic read retries before a reader falls
// back to the stripe mutex, so writer churn cannot starve a reader.
const hashReadSpinLimit = 8

// hashMaxHops bounds an optimistic chain walk. A reader standing on an
// entry that was unlinked and recycled mid-walk can be routed through
// free-list links into an unrelated chain, and in pathological
// interleavings those links can form a transient cycle. Any such reader
// is guaranteed to fail its version check (recycling implies a Remove
// bumped the stripe version after the reader's snapshot), so the bound
// only has to guarantee termination, not correctness; it is set well
// above any legitimate chain length at the design load factor.
const hashMaxHops = 4096

// Hash is a chained hash table whose reads are latch-free: each stripe
// carries a seqlock version word, bucket heads and chain links are
// published atomically, and Get is a pair of atomic loads around an
// unsynchronized traversal, retried when the stripe version moved. The
// stripe mutex serializes writers only; readers never touch it except on
// the starvation fallback. The bucket count is fixed at construction
// (sized from the expected cardinality), as in DBx1000; chains absorb
// overflow.
type Hash struct {
	buckets []atomic.Pointer[hashEntry]
	mask    uint64
	shift   uint
	stripes [hashStripes]hashStripe
	count   atomic.Int64
}

// hashStripe is one seqlock: ver is odd while a writer is mutating the
// stripe's buckets; mu serializes the writers. free is the stripe's
// entry free-list (linked through next, mutated only under mu), which
// lets delete/insert churn recycle entries instead of allocating.
// Padded to a cache line so neighboring stripes do not false-share.
type hashStripe struct {
	ver  atomic.Uint64
	mu   sync.Mutex
	free *hashEntry
	_    [64 - 24]byte
}

// beginWrite enters the stripe's write-side critical section.
func (s *hashStripe) beginWrite() {
	s.mu.Lock()
	s.ver.Add(1) // odd: readers will retry
}

// endWrite publishes the mutation and reopens optimistic reads.
func (s *hashStripe) endWrite() {
	s.ver.Add(1) // even again
	s.mu.Unlock()
}

// hashEntry is a chain node. All fields are atomics because entries are
// recycled: after Remove unlinks an entry it goes on the stripe
// free-list, and a later Insert may rewrite key/rec/next while an
// optimistic reader from before the unlink is still standing on it.
// Such readers always fail their seqlock check (the unlink bumped the
// stripe version), so they only need the loads to be tear-free, not the
// values to be consistent.
type hashEntry struct {
	key  atomic.Uint64
	rec  atomic.Pointer[storage.Record]
	next atomic.Pointer[hashEntry]
}

// NewHash creates a hash index sized for about expected keys.
func NewHash(expected int) *Hash {
	if expected < 16 {
		expected = 16
	}
	n := 1 << bits.Len(uint(expected-1)) // next power of two ≥ expected
	return &Hash{
		buckets: make([]atomic.Pointer[hashEntry], n),
		mask:    uint64(n - 1),
		shift:   uint(64 - bits.Len(uint(n-1))),
	}
}

// hash mixes the key with the 64-bit golden ratio (Fibonacci hashing).
func (h *Hash) hash(key uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> h.shift & h.mask
}

func (h *Hash) stripe(b uint64) *hashStripe {
	return &h.stripes[b&(hashStripes-1)]
}

// lookup traverses bucket b for key without synchronization beyond the
// atomic loads; callers must validate the stripe version afterwards (or
// hold the stripe mutex). The hop bound keeps the walk finite even if
// entry recycling routes it through a transient cycle; ok=false means
// the walk was cut short and the caller must retry.
func (h *Hash) lookup(b, key uint64) (rec *storage.Record, ok bool) {
	hops := 0
	for e := h.buckets[b].Load(); e != nil; e = e.next.Load() {
		if e.key.Load() == key {
			return e.rec.Load(), true
		}
		if hops++; hops > hashMaxHops {
			return nil, false
		}
	}
	return nil, true
}

// lookupLocked traverses bucket b for key with the stripe mutex held;
// the chain is well-formed (finite, acyclic) so no hop bound applies.
func (h *Hash) lookupLocked(b, key uint64) *storage.Record {
	for e := h.buckets[b].Load(); e != nil; e = e.next.Load() {
		if e.key.Load() == key {
			return e.rec.Load()
		}
	}
	return nil
}

// Get implements Index. The fast path is two atomic loads around the
// chain walk; a version mismatch (concurrent stripe writer) retries, and
// sustained churn falls back to the stripe mutex.
func (h *Hash) Get(key uint64) *storage.Record {
	b := h.hash(key)
	s := h.stripe(b)
	for i := 0; i < hashReadSpinLimit; i++ {
		v := s.ver.Load()
		if v&1 != 0 { // writer in progress
			countRestart()
			storage.Yield(i)
			continue
		}
		rec, ok := h.lookup(b, key)
		if ok && s.ver.Load() == v {
			return rec
		}
		countRestart()
	}
	// Starvation fallback: read under the writer mutex.
	s.mu.Lock()
	rec := h.lookupLocked(b, key)
	s.mu.Unlock()
	return rec
}

// Insert implements Index. Entries come off the stripe free-list when
// one is available, so steady-state insert/delete churn allocates
// nothing; the heap allocation only runs while the index is growing.
func (h *Hash) Insert(key uint64, rec *storage.Record) bool {
	b := h.hash(key)
	s := h.stripe(b)
	s.mu.Lock()
	if h.lookupLocked(b, key) != nil {
		s.mu.Unlock()
		return false
	}
	e := s.free
	if e != nil {
		s.free = e.next.Load()
	} else {
		e = &hashEntry{}
	}
	e.key.Store(key)
	e.rec.Store(rec)
	e.next.Store(h.buckets[b].Load())
	// Publishing at the head is a single atomic store; no version bump is
	// needed. A fresh entry is invisible until that store, and a recycled
	// one can only be observed mid-rewrite by a reader whose snapshot
	// predates the Remove that freed it — that reader's version check
	// fails regardless.
	h.buckets[b].Store(e)
	s.mu.Unlock()
	h.count.Add(1)
	return true
}

// Remove implements Index. Unlinking rewrites a predecessor's next, so
// the stripe version is bumped around it: a reader that was standing on
// the unlinked entry still sees a valid chain, but its Get revalidates
// and retries rather than returning a just-deleted record as current.
// The unlinked entry goes on the stripe free-list for the next Insert;
// repointing its next at the free-list head is safe for the same reason
// the unlink is — any reader that can still observe the entry holds a
// pre-bump version snapshot.
func (h *Hash) Remove(key uint64) bool {
	b := h.hash(key)
	s := h.stripe(b)
	s.beginWrite()
	var prev *hashEntry
	for e := h.buckets[b].Load(); e != nil; e = e.next.Load() {
		if e.key.Load() == key {
			next := e.next.Load()
			if prev == nil {
				h.buckets[b].Store(next)
			} else {
				prev.next.Store(next)
			}
			e.rec.Store(nil)
			e.next.Store(s.free)
			s.free = e
			s.endWrite()
			h.count.Add(-1)
			return true
		}
		prev = e
	}
	s.endWrite()
	return false
}

// Len implements Index.
func (h *Hash) Len() int { return int(h.count.Load()) }
