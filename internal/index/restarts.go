package index

import "repro/internal/obs"

// countRestart records one optimistic-read restart (a seqlock or node
// version moved under a latch-free reader, or the reader found a write in
// progress). Restarts are expected to be rare — the counter exists so the
// /metrics endpoint can prove it (plor_index_restarts_total).
func countRestart() { obs.Metrics().IndexRestarts.Add(1) }

// RestartCount returns the process-wide index read-restart counter; test
// and bench helpers diff it around a workload.
func RestartCount() uint64 { return obs.Metrics().IndexRestarts.Load() }
