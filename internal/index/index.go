// Package index provides the two index structures of the engine:
//
//   - Hash: a chained hash table with seqlock-striped latch-free reads
//     and mutex-serialized writes, used for primary-key point lookups
//     (DBx1000's default index).
//   - BTree: a concurrent B+tree with optimistic lock coupling — readers
//     descend latch-free validating per-node versions, writers use
//     hand-over-hand latches with preemptive splits. It stands in for
//     Masstree as the ordered index and supports the range scans TPC-C
//     needs (Delivery, Order-Status, Stock-Level).
//
// Both read paths are latch-free: a reader performs atomic loads only and
// restarts when a version word moved under it (counted in
// obs.Metrics().IndexRestarts). See DESIGN.md "Index concurrency".
//
// Both map uint64 keys to *storage.Record. Composite keys (warehouse,
// district, ...) are packed into uint64 by the workload packages.
package index

import "repro/internal/storage"

// Index is the interface the engine uses for point operations. BTree
// additionally offers ordered scans.
type Index interface {
	// Get returns the record mapped to key, or nil.
	Get(key uint64) *storage.Record
	// Insert maps key to rec if absent; it reports whether the insert
	// happened (false = duplicate key).
	Insert(key uint64, rec *storage.Record) bool
	// Remove deletes the mapping; it reports whether the key was present.
	Remove(key uint64) bool
	// Len returns the number of live mappings.
	Len() int
}

// Ranger is implemented by ordered indexes.
type Ranger interface {
	Index
	// Scan calls fn for each mapping with from ≤ key ≤ to in ascending
	// order until fn returns false.
	Scan(from, to uint64, fn func(key uint64, rec *storage.Record) bool)
	// First returns the smallest mapping in [from, to], if any.
	First(from, to uint64) (uint64, *storage.Record, bool)
	// Last returns the largest mapping in [from, to], if any.
	Last(from, to uint64) (uint64, *storage.Record, bool)
}
