package index

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/storage"
)

// mkRecs returns n distinct records from a scratch table.
func mkRecs(n int) []*storage.Record {
	tbl := storage.NewTable("scratch", 8, storage.TableOpts{})
	out := make([]*storage.Record, n)
	for i := range out {
		out[i] = tbl.Alloc()
	}
	return out
}

// impls builds one fresh instance of every Index implementation.
func impls() map[string]func() Index {
	return map[string]func() Index{
		"hash":  func() Index { return NewHash(1024) },
		"btree": func() Index { return NewBTree() },
	}
}

func TestIndexBasicOps(t *testing.T) {
	for name, mk := range impls() {
		t.Run(name, func(t *testing.T) {
			idx := mk()
			recs := mkRecs(3)
			if idx.Get(42) != nil {
				t.Fatal("empty index should miss")
			}
			if !idx.Insert(42, recs[0]) {
				t.Fatal("first insert failed")
			}
			if idx.Insert(42, recs[1]) {
				t.Fatal("duplicate insert should fail")
			}
			if idx.Get(42) != recs[0] {
				t.Fatal("get returned wrong record")
			}
			if idx.Len() != 1 {
				t.Fatalf("len = %d", idx.Len())
			}
			if !idx.Remove(42) {
				t.Fatal("remove failed")
			}
			if idx.Remove(42) {
				t.Fatal("second remove should fail")
			}
			if idx.Get(42) != nil || idx.Len() != 0 {
				t.Fatal("key still visible after remove")
			}
			// Reinsertion after removal works.
			if !idx.Insert(42, recs[2]) || idx.Get(42) != recs[2] {
				t.Fatal("reinsert failed")
			}
		})
	}
}

// Property: any sequence of insert/remove operations leaves the index
// agreeing with a map-based reference model.
func TestIndexMatchesReferenceModel(t *testing.T) {
	for name, mk := range impls() {
		t.Run(name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				idx := mk()
				ref := make(map[uint64]*storage.Record)
				recs := mkRecs(1)
				rec := recs[0]
				for op := 0; op < 2000; op++ {
					k := uint64(rng.Intn(300)) // small space forces collisions
					switch rng.Intn(3) {
					case 0: // insert
						_, exists := ref[k]
						if idx.Insert(k, rec) == exists {
							t.Logf("insert(%d) disagreed with model (exists=%v)", k, exists)
							return false
						}
						if !exists {
							ref[k] = rec
						}
					case 1: // remove
						_, exists := ref[k]
						if idx.Remove(k) != exists {
							t.Logf("remove(%d) disagreed (exists=%v)", k, exists)
							return false
						}
						delete(ref, k)
					default: // get
						got := idx.Get(k)
						_, exists := ref[k]
						if (got != nil) != exists {
							t.Logf("get(%d) disagreed (exists=%v)", k, exists)
							return false
						}
					}
				}
				return idx.Len() == len(ref)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestIndexConcurrentDisjointInserts(t *testing.T) {
	for name, mk := range impls() {
		t.Run(name, func(t *testing.T) {
			idx := mk()
			const goroutines, per = 8, 3000
			rec := mkRecs(1)[0]
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						k := uint64(g*per + i)
						if !idx.Insert(k, rec) {
							t.Errorf("insert(%d) failed", k)
						}
					}
				}(g)
			}
			wg.Wait()
			if idx.Len() != goroutines*per {
				t.Fatalf("len = %d, want %d", idx.Len(), goroutines*per)
			}
			for k := uint64(0); k < goroutines*per; k++ {
				if idx.Get(k) == nil {
					t.Fatalf("key %d missing", k)
				}
			}
		})
	}
}

func TestIndexConcurrentInsertRace(t *testing.T) {
	// All goroutines race to insert the same keys; exactly one must win
	// each key.
	for name, mk := range impls() {
		t.Run(name, func(t *testing.T) {
			idx := mk()
			const goroutines, keys = 8, 2000
			rec := mkRecs(1)[0]
			var wins sync.Map
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for k := uint64(0); k < keys; k++ {
						if idx.Insert(k, rec) {
							if _, dup := wins.LoadOrStore(k, true); dup {
								t.Errorf("key %d inserted twice", k)
							}
						}
					}
				}()
			}
			wg.Wait()
			n := 0
			wins.Range(func(_, _ any) bool { n++; return true })
			if n != keys || idx.Len() != keys {
				t.Fatalf("winners=%d len=%d, want %d", n, idx.Len(), keys)
			}
		})
	}
}

func TestBTreeScanOrdered(t *testing.T) {
	bt := NewBTree()
	rec := mkRecs(1)[0]
	keys := rand.New(rand.NewSource(1)).Perm(5000)
	for _, k := range keys {
		bt.Insert(uint64(k)*2, rec) // even keys only
	}
	var got []uint64
	bt.Scan(100, 400, func(k uint64, _ *storage.Record) bool {
		got = append(got, k)
		return true
	})
	var want []uint64
	for k := uint64(100); k <= 400; k += 2 {
		want = append(want, k)
	}
	if len(got) != len(want) {
		t.Fatalf("scan returned %d keys, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("scan[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Early termination.
	count := 0
	bt.Scan(0, 1<<62, func(uint64, *storage.Record) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("early-terminated scan visited %d", count)
	}
	// Inverted and empty ranges.
	bt.Scan(10, 5, func(uint64, *storage.Record) bool {
		t.Fatal("inverted range must visit nothing")
		return false
	})
	bt.Scan(101, 101, func(uint64, *storage.Record) bool {
		t.Fatal("odd key should not exist")
		return false
	})
}

func TestBTreeFirstLast(t *testing.T) {
	bt := NewBTree()
	rec := mkRecs(1)[0]
	for _, k := range []uint64{10, 20, 30, 40, 50} {
		bt.Insert(k, rec)
	}
	if k, _, ok := bt.First(15, 45); !ok || k != 20 {
		t.Fatalf("First(15,45) = %d,%v", k, ok)
	}
	if k, _, ok := bt.Last(15, 45); !ok || k != 40 {
		t.Fatalf("Last(15,45) = %d,%v", k, ok)
	}
	if _, _, ok := bt.First(21, 29); ok {
		t.Fatal("empty range should report not-found")
	}
	if k, _, ok := bt.Last(50, 1<<62); !ok || k != 50 {
		t.Fatalf("Last at boundary = %d,%v", k, ok)
	}
}

func TestBTreeScanMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bt := NewBTree()
		ref := make(map[uint64]bool)
		rec := mkRecs(1)[0]
		for i := 0; i < 3000; i++ {
			k := uint64(rng.Intn(4000))
			if rng.Intn(4) == 0 {
				bt.Remove(k)
				delete(ref, k)
			} else if bt.Insert(k, rec) {
				ref[k] = true
			}
		}
		lo := uint64(rng.Intn(2000))
		hi := lo + uint64(rng.Intn(2000))
		var got []uint64
		bt.Scan(lo, hi, func(k uint64, _ *storage.Record) bool {
			got = append(got, k)
			return true
		})
		var want []uint64
		for k := range ref {
			if k >= lo && k <= hi {
				want = append(want, k)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeConcurrentMixed(t *testing.T) {
	bt := NewBTree()
	rec := mkRecs(1)[0]
	// Pre-populate stable keys that scans can rely on.
	for k := uint64(0); k < 1000; k++ {
		bt.Insert(k*10, rec)
	}
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	// Writers churn a disjoint key region (odd keys).
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 5000; i++ {
				k := uint64(rng.Intn(10000))*10 + 1
				if rng.Intn(2) == 0 {
					bt.Insert(k, rec)
				} else {
					bt.Remove(k)
				}
			}
		}(g)
	}
	// Readers continuously verify the stable keys remain visible and
	// ordered.
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				prev := int64(-1)
				n := 0
				bt.Scan(0, 9990, func(k uint64, _ *storage.Record) bool {
					if int64(k) <= prev {
						t.Error("scan order violated")
						return false
					}
					prev = int64(k)
					if k%10 == 0 {
						n++
					}
					return true
				})
				if n != 1000 {
					t.Errorf("stable keys visible = %d, want 1000", n)
					return
				}
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
}

func TestBTreeLenTracksCount(t *testing.T) {
	bt := NewBTree()
	rec := mkRecs(1)[0]
	for k := uint64(0); k < 500; k++ {
		bt.Insert(k, rec)
	}
	for k := uint64(0); k < 500; k += 2 {
		bt.Remove(k)
	}
	if bt.Len() != 250 {
		t.Fatalf("len = %d, want 250", bt.Len())
	}
}
