package index

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/storage"
)

// btreeOrder is the maximum number of keys per node. Splits are preemptive
// (any full node encountered on the way down is split first), so a parent
// always has room for the separator its splitting child pushes up, and the
// writer never holds more than a parent/child lock pair.
const btreeOrder = 32

// BTree is a concurrent B+tree mapping uint64 → *storage.Record. Readers
// descend with hand-over-hand read latches; writers descend with write
// latches and preemptive splits; leaves are chained for range scans.
// Deletions remove keys from leaves without rebalancing (standard for
// in-memory OLTP engines; empty leaves are skipped by scans).
type BTree struct {
	mu    sync.RWMutex // guards the root pointer
	root  bnode
	count atomic.Int64
}

type bnode interface {
	lock()
	unlock()
	rlock()
	runlock()
	full() bool
}

type inner struct {
	mu       sync.RWMutex
	keys     []uint64 // len(children) == len(keys)+1
	children []bnode
}

type leaf struct {
	mu   sync.RWMutex
	keys []uint64
	vals []*storage.Record
	next *leaf
}

func (n *inner) lock()      { n.mu.Lock() }
func (n *inner) unlock()    { n.mu.Unlock() }
func (n *inner) rlock()     { n.mu.RLock() }
func (n *inner) runlock()   { n.mu.RUnlock() }
func (n *inner) full() bool { return len(n.keys) >= btreeOrder }

func (n *leaf) lock()      { n.mu.Lock() }
func (n *leaf) unlock()    { n.mu.Unlock() }
func (n *leaf) rlock()     { n.mu.RLock() }
func (n *leaf) runlock()   { n.mu.RUnlock() }
func (n *leaf) full() bool { return len(n.keys) >= btreeOrder }

// NewBTree returns an empty tree.
func NewBTree() *BTree {
	return &BTree{root: &leaf{
		keys: make([]uint64, 0, btreeOrder),
		vals: make([]*storage.Record, 0, btreeOrder),
	}}
}

// route returns the child index to follow for key k: the first separator
// greater than k.
func (n *inner) route(k uint64) int {
	return sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > k })
}

// find returns the position of k in the leaf and whether it is present.
func (l *leaf) find(k uint64) (int, bool) {
	i := sort.Search(len(l.keys), func(i int) bool { return l.keys[i] >= k })
	return i, i < len(l.keys) && l.keys[i] == k
}

// lockedRoot returns the root locked in the requested mode, immune to
// concurrent root swaps.
func (t *BTree) lockedRoot(write bool) bnode {
	t.mu.RLock()
	n := t.root
	if write {
		n.lock()
	} else {
		n.rlock()
	}
	t.mu.RUnlock()
	return n
}

// Get implements Index.
func (t *BTree) Get(key uint64) *storage.Record {
	n := t.lockedRoot(false)
	for {
		in, ok := n.(*inner)
		if !ok {
			break
		}
		ch := in.children[in.route(key)]
		ch.rlock()
		in.runlock()
		n = ch
	}
	lf := n.(*leaf)
	i, ok := lf.find(key)
	var rec *storage.Record
	if ok {
		rec = lf.vals[i]
	}
	lf.runlock()
	return rec
}

// Insert implements Index.
func (t *BTree) Insert(key uint64, rec *storage.Record) bool {
	for {
		n := t.lockedRoot(true)
		if n.full() {
			n.unlock()
			t.splitRootIfFull()
			continue
		}
		inserted := t.insertFrom(n, key, rec)
		if inserted {
			t.count.Add(1)
		}
		return inserted
	}
}

// insertFrom descends from the locked, non-full node n and inserts. It
// reports whether a new mapping was created (false = duplicate key).
func (t *BTree) insertFrom(n bnode, key uint64, rec *storage.Record) bool {
	for {
		in, isInner := n.(*inner)
		if !isInner {
			break
		}
		i := in.route(key)
		ch := in.children[i]
		ch.lock()
		if ch.full() {
			sep, sib := split(ch)
			// Parent is non-full by invariant: insert separator.
			in.keys = append(in.keys, 0)
			copy(in.keys[i+1:], in.keys[i:])
			in.keys[i] = sep
			in.children = append(in.children, nil)
			copy(in.children[i+2:], in.children[i+1:])
			in.children[i+1] = sib
			if key >= sep {
				ch.unlock()
				ch = sib
			} else {
				sib.unlock()
			}
		}
		in.unlock()
		n = ch
	}
	lf := n.(*leaf)
	i, exists := lf.find(key)
	if exists {
		lf.unlock()
		return false
	}
	lf.keys = append(lf.keys, 0)
	copy(lf.keys[i+1:], lf.keys[i:])
	lf.keys[i] = key
	lf.vals = append(lf.vals, nil)
	copy(lf.vals[i+1:], lf.vals[i:])
	lf.vals[i] = rec
	lf.unlock()
	return true
}

// split divides the locked full node n, returning the separator key and the
// new (locked) right sibling.
func split(n bnode) (uint64, bnode) {
	switch v := n.(type) {
	case *leaf:
		mid := len(v.keys) / 2
		sib := &leaf{
			keys: append(make([]uint64, 0, btreeOrder), v.keys[mid:]...),
			vals: append(make([]*storage.Record, 0, btreeOrder), v.vals[mid:]...),
			next: v.next,
		}
		sib.lock()
		v.keys = v.keys[:mid]
		v.vals = v.vals[:mid]
		v.next = sib
		return sib.keys[0], sib
	case *inner:
		mid := len(v.keys) / 2
		sep := v.keys[mid]
		sib := &inner{
			keys:     append(make([]uint64, 0, btreeOrder), v.keys[mid+1:]...),
			children: append(make([]bnode, 0, btreeOrder+1), v.children[mid+1:]...),
		}
		sib.lock()
		v.keys = v.keys[:mid]
		v.children = v.children[:mid+1]
		return sep, sib
	}
	panic("index: unknown node type")
}

// splitRootIfFull grows the tree by one level when the root is full.
func (t *BTree) splitRootIfFull() {
	t.mu.Lock()
	defer t.mu.Unlock()
	old := t.root
	old.lock()
	if !old.full() {
		old.unlock()
		return
	}
	sep, sib := split(old)
	t.root = &inner{
		keys:     append(make([]uint64, 0, btreeOrder), sep),
		children: append(make([]bnode, 0, btreeOrder+1), old, sib),
	}
	sib.unlock()
	old.unlock()
}

// Remove implements Index.
func (t *BTree) Remove(key uint64) bool {
	n := t.lockedRoot(true)
	for {
		in, isInner := n.(*inner)
		if !isInner {
			break
		}
		ch := in.children[in.route(key)]
		ch.lock()
		in.unlock()
		n = ch
	}
	lf := n.(*leaf)
	i, ok := lf.find(key)
	if ok {
		lf.keys = append(lf.keys[:i], lf.keys[i+1:]...)
		lf.vals = append(lf.vals[:i], lf.vals[i+1:]...)
		t.count.Add(-1)
	}
	lf.unlock()
	return ok
}

// Len implements Index.
func (t *BTree) Len() int { return int(t.count.Load()) }

// Scan implements Ranger.
func (t *BTree) Scan(from, to uint64, fn func(uint64, *storage.Record) bool) {
	if from > to {
		return
	}
	n := t.lockedRoot(false)
	for {
		in, isInner := n.(*inner)
		if !isInner {
			break
		}
		ch := in.children[in.route(from)]
		ch.rlock()
		in.runlock()
		n = ch
	}
	lf := n.(*leaf)
	i, _ := lf.find(from)
	for {
		for ; i < len(lf.keys); i++ {
			k := lf.keys[i]
			if k > to {
				lf.runlock()
				return
			}
			if !fn(k, lf.vals[i]) {
				lf.runlock()
				return
			}
		}
		next := lf.next
		if next == nil {
			lf.runlock()
			return
		}
		next.rlock()
		lf.runlock()
		lf = next
		i = 0
	}
}

// First implements Ranger.
func (t *BTree) First(from, to uint64) (uint64, *storage.Record, bool) {
	var k uint64
	var rec *storage.Record
	found := false
	t.Scan(from, to, func(key uint64, r *storage.Record) bool {
		k, rec, found = key, r, true
		return false
	})
	return k, rec, found
}

// Last implements Ranger. It walks the range, which is fine for the short
// ranges OLTP workloads scan (orders of one customer, a district's pending
// deliveries).
func (t *BTree) Last(from, to uint64) (uint64, *storage.Record, bool) {
	var k uint64
	var rec *storage.Record
	found := false
	t.Scan(from, to, func(key uint64, r *storage.Record) bool {
		k, rec, found = key, r, true
		return true
	})
	return k, rec, found
}
