package index

import (
	"sync"
	"sync/atomic"

	"repro/internal/storage"
)

// btreeScanSpinLimit bounds in-place snapshot retries on one leaf before
// a scanner falls back to the leaf's writer latch, so writer churn cannot
// starve a scan (mirrors hashReadSpinLimit on the hash index).
const btreeScanSpinLimit = 8

// btreeOrder is the maximum number of keys per node. Splits are preemptive
// (any full node encountered on the way down is split first), so a parent
// always has room for the separator its splitting child pushes up, and a
// writer never holds more than a parent/child latch pair.
const btreeOrder = 32

// BTree is a concurrent B+tree mapping uint64 → *storage.Record, with
// optimistic lock coupling (Leis et al., "The ART of Practical
// Synchronization" style): readers descend with NO latches, validating a
// per-node version word at every parent→child hand-off and restarting
// from the root on conflict; writers descend with hand-over-hand mutex
// coupling and preemptive splits, bumping node versions only around
// actual mutations. All mutable node state is stored in atomics, so the
// latch-free read paths are clean under the race detector rather than
// excused from it. Leaves are chained for range scans. Deletions remove
// keys from leaves without rebalancing (standard for in-memory OLTP
// engines; empty leaves are skipped by scans and never unlinked, which is
// what makes leaf-chain traversal restart-free at the chain level).
type BTree struct {
	mu    sync.Mutex // serializes root replacement
	root  atomic.Pointer[bnode]
	count atomic.Int64
}

// bnode is a B+tree node. One struct serves both roles (leaf reports
// which): inner nodes use keys[0:n] as separators and kids[0:n+1] as
// children; leaves use keys[0:n] with vals[0:n] and chain through next.
//
// Concurrency contract:
//   - mu is the writer latch; only writers take it, reader descent never
//     blocks on it.
//   - ver is a seqlock version: a writer holding mu wraps each mutation in
//     beginMutate/endMutate (odd while torn); readers snapshot an even
//     version, read fields, and revalidate.
//   - n, keys, kids, vals, next are atomics: individual loads are never
//     torn, and cross-field consistency is established by version
//     validation. leaf is immutable after construction.
type bnode struct {
	ver  atomic.Uint64
	mu   sync.Mutex
	leaf bool
	n    atomic.Int32
	keys [btreeOrder]atomic.Uint64
	kids [btreeOrder + 1]atomic.Pointer[bnode] // inner only
	vals [btreeOrder]atomic.Pointer[storage.Record] // leaf only
	next atomic.Pointer[bnode] // leaf chain
}

// beginMutate marks the node torn (odd version). Caller holds nd.mu.
func (nd *bnode) beginMutate() { nd.ver.Add(1) }

// endMutate publishes the mutation (even version). Caller holds nd.mu.
func (nd *bnode) endMutate() { nd.ver.Add(1) }

// stableVer spins past an in-progress mutation and returns an even
// version to validate against.
func (nd *bnode) stableVer() uint64 {
	for i := 0; ; i++ {
		v := nd.ver.Load()
		if v&1 == 0 {
			return v
		}
		storage.Yield(i)
	}
}

// validate reports whether the node is still exactly as versioned.
func (nd *bnode) validate(v uint64) bool { return nd.ver.Load() == v }

func (nd *bnode) full() bool { return int(nd.n.Load()) >= btreeOrder }

// route returns the child index to follow for key k among the first n
// separators: the first separator greater than k.
func (nd *bnode) route(k uint64, n int) int {
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if nd.keys[mid].Load() > k {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// search returns the position of k among the leaf's first n keys and
// whether it is present.
func (nd *bnode) search(k uint64, n int) (int, bool) {
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if nd.keys[mid].Load() >= k {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, lo < n && nd.keys[lo].Load() == k
}

// NewBTree returns an empty tree.
func NewBTree() *BTree {
	t := &BTree{}
	t.root.Store(&bnode{leaf: true})
	return t
}

// ---------------------------------------------------------------------------
// Latch-free reads

// descend walks from the root to the leaf that covers key without taking
// any latches, validating versions at each hand-off. It returns the leaf
// and its stable version, or ok=false when a conflict requires a restart
// from the root.
func (t *BTree) descend(key uint64) (lf *bnode, ver uint64, ok bool) {
	nd := t.root.Load()
	v := nd.stableVer()
	// Root re-check (Leis et al.): stabilizing may have waited out a root
	// split, whose ex-root ends even-versioned but covers only keys below
	// the pushed-up separator. The version alone cannot expose the swap,
	// so a reader holding a node that is no longer the root must restart.
	if t.root.Load() != nd {
		return nil, 0, false
	}
	for !nd.leaf {
		i := nd.route(key, int(nd.n.Load()))
		child := nd.kids[i].Load()
		// The child pointer is only meaningful if the node did not move
		// under us while we computed the route.
		if child == nil || !nd.validate(v) {
			return nil, 0, false
		}
		cv := child.stableVer()
		// Re-check the parent: proves the child was still its child (and
		// un-split) at the moment we captured cv. A concurrent split
		// makes the parent odd BEFORE touching the child, so passing this
		// check means cv predates any redistribution.
		if !nd.validate(v) {
			return nil, 0, false
		}
		nd, v = child, cv
	}
	return nd, v, true
}

// Get implements Index.
func (t *BTree) Get(key uint64) *storage.Record {
	for attempt := 0; ; attempt++ {
		lf, v, ok := t.descend(key)
		if ok {
			n := int(lf.n.Load())
			var rec *storage.Record
			if i, found := lf.search(key, n); found {
				rec = lf.vals[i].Load()
			}
			if lf.validate(v) {
				return rec
			}
		}
		countRestart()
		storage.Yield(attempt)
	}
}

// Len implements Index.
func (t *BTree) Len() int { return int(t.count.Load()) }

// scanChunk is one validated snapshot of a leaf's entries in [from, to].
type scanChunk struct {
	n    int
	keys [btreeOrder]uint64
	vals [btreeOrder]*storage.Record
	next *bnode
	more bool // a key > to exists, scan is complete after this chunk
}

// snapshot copies the leaf's entries with from ≤ key ≤ to under version
// validation. ok=false means the leaf changed mid-copy and the caller
// must re-stabilize and retry the same leaf.
func (lf *bnode) snapshot(from, to uint64, v uint64, c *scanChunk) bool {
	c.n = 0
	c.more = false
	n := int(lf.n.Load())
	if n > btreeOrder {
		n = btreeOrder // torn n; validation below will fail
	}
	i, _ := lf.search(from, n)
	for ; i < n; i++ {
		k := lf.keys[i].Load()
		if k > to {
			c.more = true
			break
		}
		c.keys[c.n] = k
		c.vals[c.n] = lf.vals[i].Load()
		c.n++
	}
	c.next = lf.next.Load()
	return lf.validate(v)
}

// Scan implements Ranger. Readers take no latches: each leaf is copied
// into a bounded on-stack snapshot under version validation, fn runs on
// the snapshot outside any critical section, and the walk follows the
// leaf chain. A leaf that changes mid-copy is retried in place — splits
// only move keys rightward into a chained sibling, and leaves are never
// unlinked, so forward progress by key order is preserved; keys already
// delivered are skipped via the advancing lower bound.
func (t *BTree) Scan(from, to uint64, fn func(uint64, *storage.Record) bool) {
	if from > to {
		return
	}
	var lf *bnode
	var v uint64
	for attempt := 0; ; attempt++ {
		var ok bool
		lf, v, ok = t.descend(from)
		if ok {
			break
		}
		countRestart()
		storage.Yield(attempt)
	}
	lo := from
	var c scanChunk
	spins := 0
	for {
		if !lf.snapshot(lo, to, v, &c) {
			countRestart()
			spins++
			if spins < btreeScanSpinLimit {
				storage.Yield(spins)
				v = lf.stableVer()
				continue
			}
			// Starvation fallback: writers serialize on lf.mu and close
			// their mutation window (even version) before releasing it, so
			// under the latch the leaf is stable and the copy cannot fail
			// validation.
			lf.mu.Lock()
			lf.snapshot(lo, to, lf.ver.Load(), &c)
			lf.mu.Unlock()
		}
		spins = 0
		for i := 0; i < c.n; i++ {
			if !fn(c.keys[i], c.vals[i]) {
				return
			}
			if c.keys[i] == ^uint64(0) {
				return // delivered the maximum key; lo cannot advance
			}
			lo = c.keys[i] + 1
		}
		if c.more || c.next == nil {
			return
		}
		lf = c.next
		v = lf.stableVer()
	}
}

// First implements Ranger.
func (t *BTree) First(from, to uint64) (uint64, *storage.Record, bool) {
	var k uint64
	var rec *storage.Record
	found := false
	t.Scan(from, to, func(key uint64, r *storage.Record) bool {
		k, rec, found = key, r, true
		return false
	})
	return k, rec, found
}

// Last implements Ranger. It walks the range, which is fine for the short
// ranges OLTP workloads scan (orders of one customer, a district's pending
// deliveries).
func (t *BTree) Last(from, to uint64) (uint64, *storage.Record, bool) {
	var k uint64
	var rec *storage.Record
	found := false
	t.Scan(from, to, func(key uint64, r *storage.Record) bool {
		k, rec, found = key, r, true
		return true
	})
	return k, rec, found
}

// ---------------------------------------------------------------------------
// Latched writes (hand-over-hand coupling, preemptive splits)

// lockedRoot returns the current root with its writer latch held, immune
// to concurrent root swaps.
func (t *BTree) lockedRoot() *bnode {
	for {
		nd := t.root.Load()
		nd.mu.Lock()
		if t.root.Load() == nd {
			return nd
		}
		nd.mu.Unlock()
	}
}

// Insert implements Index.
func (t *BTree) Insert(key uint64, rec *storage.Record) bool {
	for {
		nd := t.lockedRoot()
		if nd.full() {
			nd.mu.Unlock()
			t.splitRootIfFull()
			continue
		}
		inserted := t.insertFrom(nd, key, rec)
		if inserted {
			t.count.Add(1)
		}
		return inserted
	}
}

// insertFrom descends from the locked, non-full node nd and inserts. It
// reports whether a new mapping was created (false = duplicate key) and
// releases every latch it takes.
func (t *BTree) insertFrom(nd *bnode, key uint64, rec *storage.Record) bool {
	for !nd.leaf {
		i := nd.route(key, int(nd.n.Load()))
		ch := nd.kids[i].Load()
		ch.mu.Lock()
		if ch.full() {
			// Version order matters for OLC readers: the parent goes odd
			// BEFORE the child is redistributed, so a reader that
			// validated the parent after grabbing the child's version is
			// guaranteed the child had not yet split.
			nd.beginMutate()
			ch.beginMutate()
			sep, sib := split(ch) // sib returned latched, unpublished
			nd.insertChild(i, sep, sib)
			ch.endMutate()
			nd.endMutate()
			if key >= sep {
				ch.mu.Unlock()
				ch = sib
			} else {
				sib.mu.Unlock()
			}
		}
		nd.mu.Unlock()
		nd = ch
	}
	n := int(nd.n.Load())
	i, exists := nd.search(key, n)
	if exists {
		nd.mu.Unlock()
		return false
	}
	nd.beginMutate()
	for j := n; j > i; j-- {
		nd.keys[j].Store(nd.keys[j-1].Load())
		nd.vals[j].Store(nd.vals[j-1].Load())
	}
	nd.keys[i].Store(key)
	nd.vals[i].Store(rec)
	nd.n.Store(int32(n + 1))
	nd.endMutate()
	nd.mu.Unlock()
	return true
}

// insertChild slots separator sep and child sib at position i (sib to the
// right of the split child at i). Caller holds the latch and has the node
// in a mutation window; the node is non-full by the preemptive-split
// invariant.
func (nd *bnode) insertChild(i int, sep uint64, sib *bnode) {
	n := int(nd.n.Load())
	for j := n; j > i; j-- {
		nd.keys[j].Store(nd.keys[j-1].Load())
	}
	for j := n + 1; j > i+1; j-- {
		nd.kids[j].Store(nd.kids[j-1].Load())
	}
	nd.keys[i].Store(sep)
	nd.kids[i+1].Store(sib)
	nd.n.Store(int32(n + 1))
}

// split divides the latched full node v inside its mutation window,
// returning the separator key and the new right sibling. The sibling is
// returned latched and is not yet reachable from any parent; for leaves
// it IS immediately reachable through the chain, which is why it is fully
// populated before v.next is republished.
func split(v *bnode) (uint64, *bnode) {
	n := int(v.n.Load())
	sib := &bnode{leaf: v.leaf}
	sib.mu.Lock()
	if v.leaf {
		mid := n / 2
		for j := mid; j < n; j++ {
			sib.keys[j-mid].Store(v.keys[j].Load())
			sib.vals[j-mid].Store(v.vals[j].Load())
		}
		sib.n.Store(int32(n - mid))
		sib.next.Store(v.next.Load())
		v.next.Store(sib)
		v.n.Store(int32(mid))
		return sib.keys[0].Load(), sib
	}
	mid := n / 2
	sep := v.keys[mid].Load()
	for j := mid + 1; j < n; j++ {
		sib.keys[j-mid-1].Store(v.keys[j].Load())
	}
	for j := mid + 1; j <= n; j++ {
		sib.kids[j-mid-1].Store(v.kids[j].Load())
	}
	sib.n.Store(int32(n - mid - 1))
	v.n.Store(int32(mid))
	return sep, sib
}

// splitRootIfFull grows the tree by one level when the root is full.
func (t *BTree) splitRootIfFull() {
	t.mu.Lock()
	defer t.mu.Unlock()
	old := t.root.Load()
	old.mu.Lock()
	if !old.full() {
		old.mu.Unlock()
		return
	}
	old.beginMutate()
	sep, sib := split(old)
	nr := &bnode{}
	nr.keys[0].Store(sep)
	nr.kids[0].Store(old)
	nr.kids[1].Store(sib)
	nr.n.Store(1)
	// The new root is fully built before publication; readers loading it
	// concurrently see a consistent two-child node whose old child is
	// still torn (odd) until endMutate below, making them spin briefly.
	t.root.Store(nr)
	old.endMutate()
	sib.mu.Unlock()
	old.mu.Unlock()
}

// Remove implements Index.
func (t *BTree) Remove(key uint64) bool {
	nd := t.lockedRoot()
	for !nd.leaf {
		ch := nd.kids[nd.route(key, int(nd.n.Load()))].Load()
		ch.mu.Lock()
		nd.mu.Unlock()
		nd = ch
	}
	n := int(nd.n.Load())
	i, ok := nd.search(key, n)
	if ok {
		nd.beginMutate()
		for j := i; j < n-1; j++ {
			nd.keys[j].Store(nd.keys[j+1].Load())
			nd.vals[j].Store(nd.vals[j+1].Load())
		}
		nd.vals[n-1].Store(nil) // drop the record reference for GC
		nd.n.Store(int32(n - 1))
		nd.endMutate()
		t.count.Add(-1)
	}
	nd.mu.Unlock()
	return ok
}
