package index

import (
	"testing"
)

// TestHashEntryRecycling checks that insert/delete churn reuses chain
// entries from the stripe free-lists and that recycled entries resolve to
// the right records.
func TestHashEntryRecycling(t *testing.T) {
	h := NewHash(1024)
	recs := mkRecs(64)
	for k := uint64(0); k < 64; k++ {
		if !h.Insert(k, recs[k]) {
			t.Fatalf("insert %d failed", k)
		}
	}
	for round := 0; round < 100; round++ {
		for k := uint64(0); k < 64; k++ {
			if !h.Remove(k) {
				t.Fatalf("round %d: remove %d failed", round, k)
			}
			// Reinsert under a different key so the entry migrates
			// between buckets of the stripe's coverage.
			nk := k + uint64(round+1)*1000
			if !h.Insert(nk, recs[k]) {
				t.Fatalf("round %d: insert %d failed", round, nk)
			}
			if got := h.Get(nk); got != recs[k] {
				t.Fatalf("round %d: Get(%d) = %p, want %p", round, nk, got, recs[k])
			}
			if !h.Remove(nk) || !h.Insert(k, recs[k]) {
				t.Fatalf("round %d: restore %d failed", round, k)
			}
		}
	}
	if h.Len() != 64 {
		t.Fatalf("Len = %d, want 64", h.Len())
	}
	for k := uint64(0); k < 64; k++ {
		if h.Get(k) != recs[k] {
			t.Fatalf("final Get(%d) wrong record", k)
		}
	}
}

// TestHashChurnZeroAllocs is the index half of the PR's zero-alloc
// guarantee: once a stripe's free-list holds an entry, delete+insert
// churn allocates nothing.
func TestHashChurnZeroAllocs(t *testing.T) {
	h := NewHash(1024)
	recs := mkRecs(2)
	h.Insert(1, recs[0])
	h.Remove(1) // park one entry on the free-list
	// Free-lists are per-stripe, so churn within one stripe: alternate two
	// keys that share key 1's stripe (any key does modulo hashStripes, but
	// reusing the same bucket is the common engine pattern anyway).
	allocs := testing.AllocsPerRun(2000, func() {
		h.Insert(1, recs[0])
		h.Remove(1)
	})
	if allocs != 0 {
		t.Fatalf("warm insert/remove = %v allocs/op, want 0", allocs)
	}
}
