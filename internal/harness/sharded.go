package harness

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/db"
	"repro/internal/cc"
	"repro/internal/rpc"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/workload/tpcc"
	"repro/internal/workload/ycsb"
)

// ShardedConfig describes a multi-shard scale-out run: N shard servers on
// loopback TCP (or one unsharded server when Shards == 1 — the scale
// curve's baseline, same wire protocol, no coordinator overhead) driven by
// a closed loop of client coordinators.
type ShardedConfig struct {
	// Shards is the topology size. 1 runs the unsharded TCP baseline.
	Shards int
	// Workers is each shard's engine worker-slot count. It must cover the
	// coordinators concurrently holding transactions open on a shard: an
	// interactive session occupies a slot for its whole transaction, and in
	// the worst case every coordinator is on the same shard at once.
	Workers int
	// Coordinators is the closed-loop client count.
	Coordinators int
	// Warmup and Measure are the run phases; only Measure is recorded.
	Warmup  time.Duration
	Measure time.Duration
	// Logging enables per-shard redo WAL with group commit (the durability
	// configuration where prepare records and commit decisions ride flush
	// epochs); LogFlushInterval is the group-commit window.
	Logging          bool
	LogFlushInterval time.Duration
}

// ShardedResult is a sharded run's outcome: overall metrics plus the
// latency split between single-shard and cross-shard transactions (the
// cross-shard p999 is the acceptance metric for 2PC tail cost).
type ShardedResult struct {
	Metrics *stats.Metrics
	// Single/Cross split committed-transaction latency by the shard count
	// the transaction actually touched.
	Single *stats.Histogram
	Cross  *stats.Histogram
	// CrossCommits counts committed transactions spanning >1 shard.
	CrossCommits uint64
	// UnknownOutcomes counts cross-shard commits whose decision was lost to
	// a transport failure (possible only with failure injection; 0 in a
	// healthy run). When nonzero, exact client-side ledgers are invalid.
	UnknownOutcomes uint64
	// InvariantChecked reports that the workload's money invariant was
	// verified against the cluster after the run (TPC-C only).
	InvariantChecked bool
}

// shardedUnit is one generated transaction plus its ledger annotations.
type shardedUnit struct {
	proc      cc.Proc
	hint      int
	payW      int
	payAmount uint64
}

// shardedSource generates a coordinator's transaction stream.
type shardedSource interface {
	next() shardedUnit
}

type ycsbShardSource struct{ g *ycsb.Gen }

func (s ycsbShardSource) next() shardedUnit {
	t := s.g.Next()
	return shardedUnit{proc: t.Proc, hint: len(t.Ops)}
}

type tpccShardSource struct{ g *tpcc.Gen }

func (s tpccShardSource) next() shardedUnit {
	t := s.g.Next()
	return shardedUnit{proc: t.Proc, hint: t.Hint, payW: t.PayW, payAmount: t.PayAmount}
}

// RunShardedYCSB runs the partitioned YCSB workload on a Shards-node
// cluster. cfg.Shards == 1 serves the identical (unpartitioned) workload
// from one unsharded server over the same TCP wire protocol — the fair
// baseline for the scale curve.
func RunShardedYCSB(cfg ShardedConfig, ycfg ycsb.Config) (*ShardedResult, error) {
	ycfg.Yield = ycfg.Yield || autoYield(cfg.Coordinators)
	if cfg.Shards <= 1 {
		ycfg.Shards = 0
		var w *ycsb.Workload
		return runUnsharded(cfg, fmt.Sprintf("ycsb(θ=%.2f)", ycfg.Theta),
			func(d *cc.DB) { w = ycsb.Setup(d, ycfg) },
			func(i int) shardedSource { return ycsbShardSource{w.NewGen(int64(i))} },
			nil)
	}
	ycfg.Shards = cfg.Shards
	var w *ycsb.Workload
	var once sync.Once
	c, err := shard.NewCluster(shard.ClusterOptions{
		Shards:           cfg.Shards,
		Workers:          cfg.Workers,
		Logging:          cfg.Logging,
		LogFlushInterval: cfg.LogFlushInterval,
		Setup: func(shardID int, d *db.DB) error {
			wl := ycsb.SetupShard(d.Inner(), ycfg, shardID)
			once.Do(func() { w = wl })
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	label := fmt.Sprintf("ycsb(θ=%.2f,remote=%.0f%%)", ycfg.Theta, ycfg.RemoteFrac*100)
	return runOnCluster(cfg, c, label, shard.HashRouter{Shards: cfg.Shards},
		func(i int) shardedSource {
			home := (i - 1) % cfg.Shards
			return ycsbShardSource{w.NewGenShard(int64(i), home)}
		},
		func(i int) int { return (i - 1) % cfg.Shards },
		nil)
}

// RunShardedTPCC runs the partitioned TPC-C workload on a Shards-node
// cluster and, afterwards, verifies the warehouse-YTD money invariant
// against a client-side ledger of committed Payments. cfg.Shards == 1 is
// the unsharded TCP baseline.
func RunShardedTPCC(cfg ShardedConfig, tcfg tpcc.Config) (*ShardedResult, error) {
	tcfg.Yield = tcfg.Yield || autoYield(cfg.Coordinators)
	if tcfg.Warehouses < cfg.Shards {
		return nil, fmt.Errorf("harness: %d warehouses cannot cover %d shards", tcfg.Warehouses, cfg.Shards)
	}
	ledger := make([]atomic.Uint64, tcfg.Warehouses+1)
	track := func(u shardedUnit) {
		if u.payAmount != 0 {
			ledger[u.payW].Add(u.payAmount)
		}
	}
	if cfg.Shards <= 1 {
		tcfg.Shards = 0
		var w *tpcc.Workload
		res, err := runUnsharded(cfg, fmt.Sprintf("tpcc(wh=%d)", tcfg.Warehouses),
			func(d *cc.DB) { w = tpcc.Setup(d, tcfg) },
			func(i int) shardedSource { return tpccShardSource{w.NewGen(uint16(i), int64(i))} },
			track)
		if err != nil {
			return nil, err
		}
		return res, nil
	}
	tcfg.Shards = cfg.Shards
	var w *tpcc.Workload
	var once sync.Once
	c, err := shard.NewCluster(shard.ClusterOptions{
		Shards:           cfg.Shards,
		Workers:          cfg.Workers,
		Logging:          cfg.Logging,
		LogFlushInterval: cfg.LogFlushInterval,
		Setup: func(shardID int, d *db.DB) error {
			wl := tpcc.SetupShard(d.Inner(), tcfg, shardID)
			once.Do(func() { w = wl })
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	label := fmt.Sprintf("tpcc(wh=%d,remote=%.0f%%)", tcfg.Warehouses, tcfg.RemotePct)
	res, err := runOnCluster(cfg, c, label, w.NewRouter(cfg.Shards),
		func(i int) shardedSource {
			home := (i - 1) % cfg.Shards
			return tpccShardSource{w.NewGenShard(uint16(i), int64(i), home)}
		},
		func(i int) int { return (i - 1) % cfg.Shards },
		track)
	if err != nil {
		return nil, err
	}
	// Money invariant: every warehouse's YTD must equal its load value plus
	// exactly the committed Payments' amounts — a non-atomic cross-shard
	// commit (or a lost/doubled payment) breaks the equality.
	if res.UnknownOutcomes == 0 {
		co := c.NewCoordinator(w.NewRouter(cfg.Shards), uint16(cfg.Coordinators+1))
		defer co.Close()
		for wh := 1; wh <= tcfg.Warehouses; wh++ {
			var ytd uint64
			err := runRetry(co, func(tx cc.Tx) error {
				row, err := tx.Read(w.T.Warehouse, tpcc.WKey(wh))
				if err != nil {
					return err
				}
				ytd = tpcc.DecodeWarehouse(row).YTD
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("harness: invariant read w%d: %w", wh, err)
			}
			want := 30000000 + ledger[wh].Load()
			if ytd != want {
				return nil, fmt.Errorf("harness: warehouse %d YTD invariant violated: have %d, want %d (Δ=%d)",
					wh, ytd, want, int64(ytd)-int64(want))
			}
		}
		res.InvariantChecked = true
	}
	return res, nil
}

// runRetry drives proc to commit with standard retry handling.
func runRetry(w cc.Worker, proc cc.Proc) error {
	first := true
	for {
		err := w.Attempt(proc, first, cc.AttemptOpts{})
		if err == nil || !cc.IsAborted(err) {
			return err
		}
		first = false
	}
}

// runOnCluster drives the closed loop against a live cluster.
func runOnCluster(cfg ShardedConfig, c *shard.Cluster, label string, r shard.Router,
	mkSource func(i int) shardedSource, homeOf func(i int) int,
	track func(shardedUnit)) (*ShardedResult, error) {
	workers := make([]cc.Worker, cfg.Coordinators+1)
	coords := make([]*shard.Coordinator, cfg.Coordinators+1)
	for i := 1; i <= cfg.Coordinators; i++ {
		co := c.NewCoordinator(r, uint16(i))
		co.SetPreferredShard(homeOf(i))
		defer co.Close()
		workers[i] = co
		coords[i] = co
	}
	return runShardedLoop(cfg, label, workers, mkSource,
		func(i int) bool { return coords[i].LastTouchedShards() > 1 },
		func(i int) bool { return coords[i].AttemptShards() > 1 }, track)
}

// runUnsharded is the Shards == 1 baseline: one unsharded server over real
// TCP, ordinary interactive clients, same closed loop.
func runUnsharded(cfg ShardedConfig, label string, setup func(*cc.DB),
	mkSource func(i int) shardedSource, track func(shardedUnit)) (*ShardedResult, error) {
	// Run the baseline under the same lock policy as the sharded points
	// (bounded waits), so the scale curve varies topology alone.
	dopts := db.Options{Protocol: db.Plor, Workers: cfg.Workers,
		LockWaitBound: db.DefaultLockWaitBound}
	if cfg.Logging {
		dopts.Logging = db.LogRedo
		dopts.LogDurability = db.DurGroup
		dopts.LogFlushInterval = cfg.LogFlushInterval
	}
	d, err := db.Open(dopts)
	if err != nil {
		return nil, err
	}
	defer d.Close()
	setup(d.Inner())
	srv := d.NewServer(db.ServeOptions{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Shutdown()

	workers := make([]cc.Worker, cfg.Coordinators+1)
	for i := 1; i <= cfg.Coordinators; i++ {
		tr, err := rpc.DialTCP(addr)
		if err != nil {
			return nil, err
		}
		defer tr.Close()
		workers[i] = rpc.NewClientWorker(tr, d.Inner().Tables(), uint16(i))
	}
	never := func(int) bool { return false }
	return runShardedLoop(cfg, label, workers, mkSource, never, never, track)
}

// runShardedLoop is the shared closed loop: a fixed fleet of client
// goroutines, first-attempt-to-commit latency, busy backoff honoring the
// server's retry-after floor, and a single/cross latency split. isCross
// classifies a COMMITTED transaction (for the latency split);
// attemptCross classifies the most recent attempt regardless of outcome
// (for retry pacing).
func runShardedLoop(cfg ShardedConfig, label string, workers []cc.Worker,
	mkSource func(i int) shardedSource, isCross, attemptCross func(i int) bool,
	track func(shardedUnit)) (*ShardedResult, error) {
	if cfg.Coordinators < 1 {
		return nil, errors.New("harness: sharded run needs ≥1 coordinator")
	}
	if cfg.Measure <= 0 {
		cfg.Measure = time.Second
	}
	var (
		start       = time.Now()
		recordAfter = start.Add(cfg.Warmup)
		deadline    = recordAfter.Add(cfg.Measure)
		singles     = make([]*stats.Histogram, cfg.Coordinators+1)
		crosses     = make([]*stats.Histogram, cfg.Coordinators+1)
		commits     = make([]uint64, cfg.Coordinators+1)
		crossCount  = make([]uint64, cfg.Coordinators+1)
		aborts      = make([]uint64, cfg.Coordinators+1)
		retries     = make([]uint64, cfg.Coordinators+1)
		unknowns    atomic.Uint64
		loopErr     atomic.Pointer[error]
		wg          sync.WaitGroup
	)
	for i := 1; i <= cfg.Coordinators; i++ {
		singles[i] = stats.NewHistogram()
		crosses[i] = stats.NewHistogram()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			worker := workers[i]
			src := mkSource(i)
			rng := uint64(i)*0x9E3779B97F4A7C15 + 12345
			for {
				now := time.Now()
				if now.After(deadline) {
					return
				}
				recording := now.After(recordAfter)
				unit := src.next()
				txnStart := now
				first := true
				failed := 0
				for {
					err := worker.Attempt(unit.proc, first, cc.AttemptOpts{ResourceHint: unit.hint})
					if err == nil || errors.Is(err, cc.ErrIntentionalRollback) {
						break
					}
					if rpc.IsServerBusy(err) {
						var busy *rpc.ErrServerBusy
						errors.As(err, &busy)
						time.Sleep(rpc.BusyBackoff(busy.RetryAfter, &rng))
						continue
					}
					if errors.Is(err, shard.ErrOutcomeUnknown) {
						// The transaction may or may not have committed; its
						// timestamp is burned. Move on with a fresh one.
						unknowns.Add(1)
						unit = src.next()
						txnStart = time.Now()
						first = true
						continue
					}
					if !cc.IsAborted(err) {
						e := fmt.Errorf("coordinator %d: non-retryable: %w", i, err)
						loopErr.CompareAndSwap(nil, &e)
						return
					}
					if recording {
						aborts[i]++
						retries[i]++
					}
					first = false
					// Plor retries with no backoff — aging via the kept
					// timestamp resolves intra-shard contention. But an
					// aborted CROSS-shard attempt usually lost a bounded-wait
					// race (wounds don't reach waiters parked on other shards
					// — see lock.SetWaitBound), and instant re-execution just
					// re-collides; after a couple of those, back off with
					// capped jitter to let the conflicting holder finish its
					// round trips. ts is still the original — the aging
					// guarantee is untouched, this only paces re-execution.
					if attemptCross(i) {
						failed++
						if failed > 2 {
							backoff := time.Duration(100<<min(failed-3, 6)) * time.Microsecond
							rng = rng*6364136223846793005 + 1442695040888963407
							time.Sleep(backoff/2 + time.Duration(rng>>33)%(backoff/2+1))
						}
					}
				}
				if track != nil {
					track(unit)
				}
				cross := isCross(i)
				if recording {
					commits[i]++
					lat := time.Since(txnStart).Nanoseconds()
					if cross {
						crossCount[i]++
						crosses[i].Record(lat)
					} else {
						singles[i].Record(lat)
					}
				}
			}
		}(i)
	}
	wg.Wait()
	if e := loopErr.Load(); e != nil {
		return nil, *e
	}
	elapsed := time.Since(recordAfter)
	if elapsed > cfg.Measure {
		elapsed = cfg.Measure
	}
	res := &ShardedResult{
		Single:          stats.MergeAll(singles[1:]),
		Cross:           stats.MergeAll(crosses[1:]),
		UnknownOutcomes: unknowns.Load(),
	}
	all := stats.MergeAll([]*stats.Histogram{res.Single, res.Cross})
	m := &stats.Metrics{
		Label:   fmt.Sprintf("sharded(%d)/%s", cfg.Shards, label),
		Workers: cfg.Coordinators,
		Elapsed: elapsed,
		Latency: all,
	}
	for i := 1; i <= cfg.Coordinators; i++ {
		m.Commits += commits[i]
		m.Aborts += aborts[i]
		m.Retries += retries[i]
		res.CrossCommits += crossCount[i]
	}
	res.Metrics = m
	return res, nil
}
