package harness

import (
	"testing"
	"time"

	"repro/internal/workload/tpcc"
	"repro/internal/workload/ycsb"
)

// TestShardedYCSBSmoke drives the sharded YCSB runner on 2 shards with a
// cross-shard fraction and checks both latency classes are populated.
func TestShardedYCSBSmoke(t *testing.T) {
	ycfg := ycsb.B()
	ycfg.Records = 4000
	ycfg.RecordSize = 64
	ycfg.RemoteFrac = 0.2
	res, err := RunShardedYCSB(ShardedConfig{
		Shards:       2,
		Workers:      8,
		Coordinators: 4,
		Warmup:       50 * time.Millisecond,
		Measure:      300 * time.Millisecond,
	}, ycfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Commits == 0 {
		t.Fatal("no commits")
	}
	if res.CrossCommits == 0 {
		t.Fatal("RemoteFrac=0.2 produced no cross-shard commits")
	}
	if res.UnknownOutcomes != 0 {
		t.Fatalf("unexpected unknown outcomes: %d", res.UnknownOutcomes)
	}
	t.Logf("commits=%d cross=%d p999(cross)=%v",
		res.Metrics.Commits, res.CrossCommits, time.Duration(res.Cross.Quantile(0.999)))
}

// TestShardedTPCCInvariant runs partitioned TPC-C with remote payments
// across 2 shards and relies on the runner's built-in warehouse-YTD money
// invariant sweep: every committed remote Payment's amount must land in the
// remote warehouse's YTD exactly once despite crossing a 2PC boundary.
func TestShardedTPCCInvariant(t *testing.T) {
	tcfg := tpcc.Config{Warehouses: 4, RemotePct: 25}
	res, err := RunShardedTPCC(ShardedConfig{
		Shards:       2,
		Workers:      8,
		Coordinators: 4,
		Warmup:       50 * time.Millisecond,
		Measure:      400 * time.Millisecond,
	}, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Commits == 0 {
		t.Fatal("no commits")
	}
	if !res.InvariantChecked {
		t.Fatal("invariant sweep did not run")
	}
	if res.CrossCommits == 0 {
		t.Fatal("RemotePct=25 produced no cross-shard commits")
	}
	t.Logf("commits=%d cross=%d unknown=%d", res.Metrics.Commits, res.CrossCommits, res.UnknownOutcomes)
}

// TestShardedBaseline exercises the Shards==1 TCP baseline path the scale
// curve compares against.
func TestShardedBaseline(t *testing.T) {
	ycfg := ycsb.B()
	ycfg.Records = 2000
	ycfg.RecordSize = 64
	res, err := RunShardedYCSB(ShardedConfig{
		Shards:       1,
		Workers:      4,
		Coordinators: 2,
		Warmup:       20 * time.Millisecond,
		Measure:      200 * time.Millisecond,
	}, ycfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Commits == 0 {
		t.Fatal("no commits")
	}
	if res.CrossCommits != 0 {
		t.Fatal("baseline cannot have cross-shard commits")
	}
}
