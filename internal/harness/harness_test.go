package harness

import (
	"strings"
	"testing"
	"time"

	"repro/db"
	"repro/internal/workload/tpcc"
	"repro/internal/workload/ycsb"
)

func tinyYCSB(workers int) *YCSB {
	cfg := ycsb.A()
	cfg.Records = 2000
	cfg.RecordSize = 64
	return NewYCSB(cfg, workers)
}

func TestRunStoredProcedure(t *testing.T) {
	m, err := Run(Config{
		Protocol: db.Plor,
		Workers:  4,
		Warmup:   50 * time.Millisecond,
		Measure:  300 * time.Millisecond,
		Workload: tinyYCSB(4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Commits == 0 {
		t.Fatal("no transactions committed")
	}
	if m.Throughput() <= 0 {
		t.Fatal("zero throughput")
	}
	if m.Latency.Count() != m.Commits {
		t.Fatalf("latency samples %d != commits %d", m.Latency.Count(), m.Commits)
	}
	if !strings.Contains(m.Label, "PLOR") {
		t.Fatalf("label = %q", m.Label)
	}
}

func TestRunEveryProtocolSmoke(t *testing.T) {
	for _, p := range db.Protocols() {
		t.Run(string(p), func(t *testing.T) {
			m, err := Run(Config{
				Protocol: p,
				Workers:  3,
				Measure:  150 * time.Millisecond,
				Backoff:  p == db.NoWait || p == db.Silo || p == db.TicToc || p == db.MOCC,
				Workload: tinyYCSB(3),
			})
			if err != nil {
				t.Fatal(err)
			}
			if m.Commits == 0 {
				t.Fatal("no commits")
			}
		})
	}
}

func TestRunInteractive(t *testing.T) {
	m, err := Run(Config{
		Protocol:    db.PlorDWA,
		Workers:     3,
		Measure:     250 * time.Millisecond,
		Interactive: true,
		RTT:         2 * time.Microsecond,
		Workload:    tinyYCSB(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Commits == 0 {
		t.Fatal("no commits in interactive mode")
	}
}

func TestRunWithLogging(t *testing.T) {
	for _, mode := range []db.LogMode{db.LogRedo, db.LogUndo} {
		m, err := Run(Config{
			Protocol:   db.Plor,
			Workers:    2,
			Measure:    150 * time.Millisecond,
			Logging:    mode,
			LogLatency: 100 * time.Nanosecond,
			Workload:   tinyYCSB(2),
		})
		if err != nil {
			t.Fatal(err)
		}
		if m.Commits == 0 {
			t.Fatal("no commits with logging")
		}
	}
	// OCC + undo is rejected.
	if _, err := Run(Config{
		Protocol: db.Silo,
		Workers:  1,
		Measure:  50 * time.Millisecond,
		Logging:  db.LogUndo,
		Workload: tinyYCSB(1),
	}); err == nil {
		t.Fatal("Silo with undo logging should fail")
	}
}

func TestRunInstrumented(t *testing.T) {
	m, err := Run(Config{
		Protocol:   db.Plor,
		Workers:    3,
		Measure:    200 * time.Millisecond,
		Instrument: true,
		Workload:   tinyYCSB(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Breakdown.Commits == 0 {
		t.Fatal("breakdown not collected")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Protocol: db.Plor}); err == nil {
		t.Fatal("missing workload should error")
	}
	if _, err := Run(Config{Protocol: "NOPE", Workload: tinyYCSB(1), Measure: time.Millisecond}); err == nil {
		t.Fatal("bad protocol should error")
	}
}

func TestRunWithAdmissionControl(t *testing.T) {
	m, err := Run(Config{
		Protocol:  db.Plor,
		Workers:   6,
		MaxActive: 2,
		Measure:   200 * time.Millisecond,
		Workload:  tinyYCSB(6),
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Commits == 0 {
		t.Fatal("no commits with admission control")
	}
}

func TestTPCCAdapterSmoke(t *testing.T) {
	m, err := Run(Config{
		Protocol: db.Plor,
		Workers:  2,
		Measure:  300 * time.Millisecond,
		Workload: NewTPCC(tpcc.Config{Warehouses: 1, InvalidItemPct: 1}, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Commits == 0 {
		t.Fatal("no TPC-C commits")
	}
}

func TestRunHTAPScanners(t *testing.T) {
	cfg := ycsb.ChurnDefaults()
	cfg.Records = 1000
	cfg.RecordSize = 32
	cfg.Ordered = true
	m, err := Run(Config{
		Protocol:     db.Plor,
		Workers:      2,
		Scanners:     1,
		ScanInterval: 5 * time.Millisecond,
		Measure:      300 * time.Millisecond,
		Workload:     NewChurn(cfg, 2),
		CaptureMem:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Commits == 0 {
		t.Fatal("no writer commits with scanners running")
	}
	if m.SnapshotScans == 0 {
		t.Fatal("no snapshot scans completed")
	}
	// Run fails on any inconsistent scan, so reaching here means every
	// scan saw exactly cfg.Records rows; the row count must agree.
	if m.ScanRows != m.SnapshotScans*uint64(cfg.Records) {
		t.Fatalf("scan rows %d != scans %d x records %d", m.ScanRows, m.SnapshotScans, cfg.Records)
	}
	if m.ScanLatency == nil || m.ScanLatency.Count() == 0 {
		t.Fatal("no scan latency samples recorded")
	}

	// Scanners without a ScanTarget workload must be rejected.
	if _, err := Run(Config{
		Protocol: db.Plor,
		Workers:  2,
		Scanners: 1,
		Measure:  50 * time.Millisecond,
		Workload: tinyYCSB(2),
	}); err == nil {
		t.Fatal("Scanners over a non-ScanTarget workload should fail")
	}
	// Scanners with reclamation off must be rejected.
	if _, err := Run(Config{
		Protocol:  db.Plor,
		Workers:   2,
		Scanners:  1,
		NoReclaim: true,
		Measure:   50 * time.Millisecond,
		Workload:  NewChurn(cfg, 2),
	}); err == nil {
		t.Fatal("Scanners + NoReclaim should fail")
	}
}
