package harness

import (
	"io"
	"strings"
	"testing"
	"time"
)

// microScale shrinks figure runs to smoke size.
func microScale() Scale {
	return Scale{
		Threads:      []int{2},
		FixedThreads: 2,
		Warmup:       20 * time.Millisecond,
		Measure:      120 * time.Millisecond,
		Records:      5_000,
		RecordSize:   64,
	}
}

func TestFiguresInventory(t *testing.T) {
	figs := Figures()
	if len(figs) != 12 {
		t.Fatalf("figures = %d, want 12 (every experiment in the paper + the 14d durability variant)", len(figs))
	}
	want := []string{"1", "6", "7", "8", "9", "10", "11", "12", "13", "14", "14d", "15"}
	for i, f := range figs {
		if f.ID != want[i] {
			t.Fatalf("figure %d id = %s, want %s", i, f.ID, want[i])
		}
		if f.Run == nil || f.Title == "" {
			t.Fatalf("figure %s incomplete", f.ID)
		}
	}
}

// TestYCSBFiguresSmoke executes every YCSB-based figure at micro scale.
func TestYCSBFiguresSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sc := microScale()
	for _, fig := range Figures() {
		switch fig.ID {
		case "1", "6", "10", "11", "12", "13":
		default:
			continue // TPC-C figures covered separately
		}
		t.Run("fig"+fig.ID, func(t *testing.T) {
			var sb strings.Builder
			if err := fig.Run(&sb, sc); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(sb.String(), "tput=") &&
				!strings.Contains(sb.String(), "%") {
				t.Fatalf("figure %s produced no rows:\n%s", fig.ID, sb.String())
			}
		})
	}
}

// TestTPCCFigureSmoke executes one TPC-C-based figure end to end (loading a
// warehouse is expensive; the others share the same code paths).
func TestTPCCFigureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sc := microScale()
	var sb strings.Builder
	if err := Fig7(&sb, sc); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "tput=") {
		t.Fatalf("fig 7 produced no rows:\n%s", sb.String())
	}
}

// TestFig15Smoke covers the Plor-RT sweep (YCSB half only).
func TestFig15Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sc := microScale()
	var sb strings.Builder
	// Run only the YCSB half by invoking the figure and accepting the
	// TPC-C half's cost at micro scale (one warehouse, 3 variants).
	if err := Fig15(io.MultiWriter(&sb), sc); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "PLOR_RT(SF=1000)") &&
		!strings.Contains(sb.String(), "PLOR_RT(SF=1K)") {
		t.Fatalf("fig 15 missing RT rows:\n%s", sb.String())
	}
}
