// Package harness runs benchmark experiments: it wires an engine, a
// workload, and a worker fleet together, drives a closed-loop run for a
// fixed duration, and returns the throughput / latency / breakdown metrics
// the paper's figures plot.
//
// Measurement methodology follows §6.1: requests are generated locally by
// the workers (stored-procedure mode) or by client sessions over a
// simulated network (interactive mode); a transaction's end-to-end latency
// is measured from its FIRST invocation to its commit, so aborted attempts
// accumulate into the committed transaction's latency — the effect that
// makes abort-prone protocols heavy-tailed.
package harness

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/db"
	"repro/internal/cc"
	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/stats"
	"repro/internal/wal"
)

// Workload abstracts a benchmark: it loads tables into a database and then
// produces per-worker transaction sources.
type Workload interface {
	// Name labels result rows.
	Name() string
	// Setup creates and loads the tables.
	Setup(d *cc.DB)
	// NewSource returns worker wid's transaction stream.
	NewSource(wid uint16) Source
}

// Source generates transactions for one worker.
type Source interface {
	Next() Unit
}

// ScanTarget is implemented by workloads that support HTAP snapshot
// scanners. ScanSpec names the (Ordered) table to scan, the key range, and
// the exact live-row count every consistent snapshot must observe
// (0 = unknown, skip the check). A workload with multi-key write
// transactions that keep the live count invariant — churn's delete+insert
// pairs — turns the count into a snapshot-atomicity probe: any scan that
// sees a torn transaction miscounts.
type ScanTarget interface {
	ScanSpec() (table string, from, to uint64, liveRows int)
}

// Unit is one generated transaction. Snap, when non-nil AND the run has
// MVCC enabled, is a lock-free snapshot variant of Proc the worker runs on
// its SnapshotWorker instead (no locks, no aborts); without MVCC, Proc runs
// through the engine as usual.
type Unit struct {
	Proc     cc.Proc
	ReadOnly bool
	Hint     int
	Snap     func(sw *cc.SnapshotWorker) error
}

// Config describes one experiment run.
type Config struct {
	// Protocol and SlackFactor select the engine (see package db).
	Protocol    db.Protocol
	SlackFactor uint64
	// Workers is the closed-loop worker count.
	Workers int
	// Warmup and Measure are the run phases; only Measure is recorded.
	Warmup  time.Duration
	Measure time.Duration
	// Logging enables the WAL (Fig. 14); LogLatency models the device
	// (default 100 ns).
	Logging    db.LogMode
	LogLatency time.Duration
	// LogDurability selects the WAL commit-path discipline (sync append
	// per commit, group-commit epochs, or async publish — the Fig. 14
	// durability variant); LogFlushInterval is the group-commit
	// coalescing window (0 = eager).
	LogDurability    db.Durability
	LogFlushInterval time.Duration
	// Interactive runs the split client/server mode over a simulated
	// network with the given round-trip time (Fig. 8).
	Interactive bool
	RTT         time.Duration
	// Sessions, when > 0 with Interactive, runs that many client sessions
	// multiplexed onto the M:N session scheduler instead of one dedicated
	// server goroutine (and worker slot) per client. Sessions and Executors
	// are independent knobs: 10k sessions can share 8 executors.
	Sessions int
	// Executors sets the scheduler's executor-pool size (default Workers).
	// Only meaningful with Sessions > 0; must not exceed Workers.
	Executors int
	// Deadline, with CriticalFrac > 0, is the latency budget critical
	// transactions declare on the wire: each critical transaction carries an
	// absolute deadline of first-attempt-start + Deadline, so retries race
	// the same clock. A critical transaction misses when it commits past its
	// deadline or the server sheds it as deadline-infeasible (the harness
	// abandons it rather than retrying a hopeless budget). Requires
	// Interactive + Sessions.
	Deadline time.Duration
	// CriticalFrac is the fraction of transactions drawn (per transaction,
	// not per worker) as deadline-critical; the rest run as background with
	// no declared deadline.
	CriticalFrac float64
	// SchedFIFO runs the session scheduler in its FIFO baseline mode:
	// one arrival-ordered queue, no slack ordering, no deadline shedding,
	// no stealing. The A/B control for the deadline experiments.
	SchedFIFO bool
	// SchedNoSteal keeps slack ordering but disables executor work-stealing
	// (the steal-vs-stickiness ablation).
	SchedNoSteal bool
	// Batch enables interactive operation batching: workload phases of
	// independent operations cross the simulated network as one multi-op
	// frame (one RTT) instead of one round trip per operation.
	Batch bool
	// Instrument collects the execution-time breakdown (Fig. 12).
	Instrument bool
	// Backoff enables randomized retry backoff. Protocols whose retries
	// carry no priority (NO_WAIT, Silo, ...) livelock without it; Plor
	// and WOUND_WAIT do not need it.
	Backoff bool
	// MaxActive, when > 0, caps the number of transactions admitted
	// concurrently (admission control). The paper observes Plor's
	// throughput dipping ~10% past its peak thread count and suggests
	// admission control as the fix (§6.2.1); this knob implements it and
	// the AblationAdmission bench measures it.
	MaxActive int
	// Trace enables the obs event tracer for the run and attaches a
	// per-phase latency attribution table to the returned metrics.
	Trace bool
	// TraceRing overrides the per-worker trace ring capacity (events).
	TraceRing int
	// ProfileLocks runs the lock-contention sampler during the run; read
	// the report afterwards with obs.TopHotLocks.
	ProfileLocks bool
	// RTTSleep makes the interactive transport sleep the RTT instead of
	// busy-waiting (see rpc.ChanTransport.UseSleepRTT for the tradeoff).
	RTTSleep bool
	// NoReclaim disables epoch-based record reclamation for the run, so
	// delete/insert churn grows table memory (the A/B baseline for the
	// bounded-memory experiment).
	NoReclaim bool
	// Scanners runs that many snapshot read-only scanner goroutines
	// alongside the workers (HTAP mode): each repeatedly opens a snapshot
	// transaction and scans the workload's scan target end to end, with no
	// locks and no aborts. Requires a workload implementing ScanTarget
	// with an Ordered table; enables MVCC version capture on the database.
	// Incompatible with NoReclaim.
	Scanners int
	// ScanInterval paces the scanners: each sleeps this long between
	// scans (0 = closed loop, scan back to back). Closed-loop scanners
	// measure scan bandwidth; paced scanners model an analytic cadence
	// and keep the writer-impact comparison meaningful on small machines,
	// where back-to-back full-table scans would saturate the CPU whatever
	// the concurrency control does.
	ScanInterval time.Duration
	// MVCC enables version capture without scanners, so workloads with
	// snapshot-capable transactions (TPC-C Stock-Level) route them through
	// the snapshot read class. Implied by Scanners > 0; incompatible with
	// NoReclaim and with PLOR_ELR (whose retired dirty installs would need
	// snapshot stamps before commit).
	MVCC bool
	// CaptureMem records the run's memory footprint (table bytes, heap
	// after a forced GC, reclaim counters) into the returned metrics.
	CaptureMem bool
	// Workload supplies the tables and transactions.
	Workload Workload
	// Label overrides the result row label.
	Label string
}

// engineName resolves the display name for the config's protocol.
func (c *Config) label() string {
	if c.Label != "" {
		return c.Label
	}
	name := string(c.Protocol)
	if c.Protocol == db.PlorRT {
		name = fmt.Sprintf("PLOR_RT(SF=%d)", c.SlackFactor)
	}
	return name
}

// Run executes the experiment and returns its metrics.
func Run(cfg Config) (*stats.Metrics, error) {
	if cfg.Workload == nil {
		return nil, errors.New("harness: no workload")
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Measure <= 0 {
		cfg.Measure = time.Second
	}
	engine, err := engineFor(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.CriticalFrac > 0 || cfg.Deadline > 0 {
		if cfg.CriticalFrac <= 0 || cfg.Deadline <= 0 {
			return nil, errors.New("harness: Deadline and CriticalFrac must be set together")
		}
		if !cfg.Interactive || cfg.Sessions <= 0 {
			return nil, errors.New("harness: deadline mode requires Interactive sessions (the deadline travels on the wire)")
		}
	}
	if (cfg.Scanners > 0 || cfg.MVCC) && cfg.NoReclaim {
		return nil, errors.New("harness: MVCC requires reclamation (version GC rides the epoch reclaimer)")
	}
	if (cfg.Scanners > 0 || cfg.MVCC) && cfg.Protocol == db.PlorELR {
		return nil, fmt.Errorf("harness: %s is incompatible with MVCC (snapshot stamps assume install-at-commit)", db.PlorELR)
	}
	ccdb := cc.NewDBWithScanners(cfg.Workers, cfg.Scanners, engine.TableOpts())
	if cfg.NoReclaim {
		ccdb.DisableReclamation()
	}
	if cfg.Scanners > 0 || cfg.MVCC {
		ccdb.EnableMVCC()
	}
	if cfg.Logging != db.LogOff {
		mode := wal.Redo
		if cfg.Logging == db.LogUndo {
			if !engine.SupportsUndoLogging() {
				return nil, fmt.Errorf("harness: %s cannot run undo logging", engine.Name())
			}
			mode = wal.Undo
		}
		lat := cfg.LogLatency
		if lat == 0 {
			lat = 100 * time.Nanosecond
		}
		ccdb.Log = wal.NewLoggerOpts(mode, cfg.Workers, func(int) wal.Device {
			return wal.NewSimDevice(lat)
		}, wal.Options{Durability: cfg.LogDurability, FlushInterval: cfg.LogFlushInterval})
		// Stop the flusher and flush the async tail once the run is over
		// (workers have all returned by the time deferred calls run).
		defer ccdb.Log.Close()
	}
	cfg.Workload.Setup(ccdb)

	// Resolve the HTAP scan target after setup (the table must exist).
	var (
		scanTbl          *cc.Table
		scanFrom, scanTo uint64
		scanLive         int
	)
	if cfg.Scanners > 0 {
		target, ok := cfg.Workload.(ScanTarget)
		if !ok {
			return nil, fmt.Errorf("harness: workload %s does not support snapshot scanners", cfg.Workload.Name())
		}
		var name string
		name, scanFrom, scanTo, scanLive = target.ScanSpec()
		scanTbl = ccdb.Table(name)
		if scanTbl == nil {
			return nil, fmt.Errorf("harness: scan target %q not found", name)
		}
		if scanTbl.Ranger() == nil {
			return nil, fmt.Errorf("harness: scan target %q is not an ordered table", name)
		}
	}

	// Baseline for the run's reclaim-counter deltas (obs counters are
	// process-global and other runs may have bumped them).
	var baseReclaimed, baseRecycled uint64
	if cfg.CaptureMem {
		baseReclaimed = obs.Metrics().RecordsReclaimed.Load()
		baseRecycled = obs.Metrics().RecordsRecycled.Load()
	}

	// Build executors: local workers, or interactive clients whose server
	// sessions share the same database. With Sessions set, clients are M:N
	// sessions onto a shared scheduler; clientN (not Workers) is then the
	// closed-loop goroutine count.
	clientN := cfg.Workers
	var sched *rpc.Scheduler
	if cfg.Interactive && cfg.Sessions > 0 {
		clientN = cfg.Sessions
		execN := cfg.Executors
		if execN == 0 {
			execN = cfg.Workers
		}
		if execN > cfg.Workers {
			return nil, fmt.Errorf("harness: executors (%d) exceed worker slots (%d)", execN, cfg.Workers)
		}
		// QueueCap = Sessions: each session occupies at most one queue slot
		// (single-presence invariant), so this cap admits every closed-loop
		// client — the harness measures scheduling, not self-inflicted
		// shedding. Overload behavior is exercised by the saturation guard
		// and the rpc tests, which configure tighter caps explicitly.
		sched = rpc.NewScheduler(engine, ccdb, rpc.SchedConfig{
			Executors: execN,
			QueueCap:  cfg.Sessions,
			FIFO:      cfg.SchedFIFO,
			NoSteal:   cfg.SchedNoSteal,
		})
		// Registered before the transport-close defer below: LIFO order
		// closes every session first, then tears the scheduler down.
		defer sched.Close()
	}
	workers := make([]cc.Worker, clientN+1)
	transports := make([]rpc.Transport, 0, clientN)
	for wid := 1; wid <= clientN; wid++ {
		if cfg.Interactive {
			var tr rpc.Transport
			if sched != nil {
				st := rpc.NewSchedChanTransport(sched, cfg.RTT)
				if st == nil {
					return nil, errors.New("harness: scheduler refused a session (MaxSessions)")
				}
				if cfg.RTTSleep {
					st.UseSleepRTT(true)
				}
				tr = st
			} else {
				ct := rpc.NewChanTransport(engine, ccdb, uint16(wid), cfg.RTT)
				if cfg.RTTSleep {
					ct.UseSleepRTT(true)
				}
				tr = ct
			}
			transports = append(transports, tr)
			cw := rpc.NewClientWorker(tr, ccdb.Tables(), uint16(wid))
			if cfg.Batch {
				cw.EnableBatching()
			}
			if cfg.Instrument {
				cw.EnableBreakdown()
			}
			workers[wid] = cw
		} else {
			workers[wid] = engine.NewWorker(ccdb, uint16(wid), cfg.Instrument)
		}
	}
	defer func() {
		for _, tr := range transports {
			tr.Close()
		}
	}()

	if cfg.Trace {
		obs.ResetTrace()
		if cfg.TraceRing > 0 {
			obs.SetRingSize(cfg.TraceRing)
		}
		obs.EnableTrace()
		defer obs.DisableTrace()
	}
	if cfg.ProfileLocks {
		prof := obs.NewProfiler(0, ccdb.SampleLockContention)
		prof.Start()
		obs.SetProfiler(prof)
		defer prof.Stop()
	}

	var (
		start        = time.Now()
		recordAfter  = start.Add(cfg.Warmup)
		deadline     = recordAfter.Add(cfg.Measure)
		hists        = make([]*stats.Histogram, clientN+1)
		commits      = make([]uint64, clientN+1)
		aborts       = make([]uint64, clientN+1)
		retryCounts  = make([]uint64, clientN+1)
		causes       = make([][stats.NumAbortCauses]uint64, clientN+1)
		measureStart time.Time
		wg           sync.WaitGroup
	)
	// Mixed-criticality accounting (Deadline/CriticalFrac mode): per-class
	// commit counts, latency histograms, and deadline misses, per worker.
	deadlineMode := cfg.Deadline > 0
	var (
		critHists   []*stats.Histogram
		bgHists     []*stats.Histogram
		critCommits []uint64
		critMisses  []uint64
		critSheds   []uint64
		bgCommits   []uint64
	)
	if deadlineMode {
		critHists = make([]*stats.Histogram, clientN+1)
		bgHists = make([]*stats.Histogram, clientN+1)
		critCommits = make([]uint64, clientN+1)
		critMisses = make([]uint64, clientN+1)
		critSheds = make([]uint64, clientN+1)
		bgCommits = make([]uint64, clientN+1)
	}
	// Admission control: a semaphore bounding in-flight transactions.
	var admit chan struct{}
	if cfg.MaxActive > 0 && cfg.MaxActive < clientN {
		admit = make(chan struct{}, cfg.MaxActive)
	}
	for wid := 1; wid <= clientN; wid++ {
		hists[wid] = stats.NewHistogram()
		if deadlineMode {
			critHists[wid] = stats.NewHistogram()
			bgHists[wid] = stats.NewHistogram()
		}
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			worker := workers[wid]
			src := cfg.Workload.NewSource(uint16(wid))
			h := hists[wid]
			rng := uint64(wid)*0x9E3779B97F4A7C15 + 12345
			// Snapshot-capable units run on the worker's own slot: the
			// goroutine alternates between engine and snapshot execution,
			// never both at once, so sharing the wid's epoch slot is safe.
			var snapW *cc.SnapshotWorker
			if ccdb.MVCCEnabled() && !cfg.Interactive {
				snapW = ccdb.SnapshotWorker(uint16(wid))
			}
			for {
				now := time.Now()
				if now.After(deadline) {
					return
				}
				recording := now.After(recordAfter)
				unit := src.Next()
				if unit.Snap != nil && snapW != nil {
					if admit != nil {
						admit <- struct{}{}
					}
					t0 := time.Now()
					snapW.Begin()
					err := unit.Snap(snapW)
					snapW.End()
					if admit != nil {
						<-admit
					}
					if err != nil {
						panic(fmt.Sprintf("harness: worker %d: snapshot unit: %v", wid, err))
					}
					if recording {
						commits[wid]++
						h.Record(time.Since(t0).Nanoseconds())
					}
					continue
				}
				if admit != nil {
					admit <- struct{}{}
				}
				opts := cc.AttemptOpts{ReadOnly: unit.ReadOnly, ResourceHint: unit.Hint}
				txnStart := now
				// Criticality draw: a critical transaction declares an
				// absolute deadline (first-attempt start + budget) on the
				// wire, so conflict retries race the same clock rather than
				// resetting it.
				critical := false
				if deadlineMode {
					rng = rng*6364136223846793005 + 1442695040888963407
					critical = float64(rng>>11)/(1<<53) < cfg.CriticalFrac
					if critical {
						opts.DeadlineHint = uint64(txnStart.Add(cfg.Deadline).UnixNano())
					}
				}
				abandoned := false
				traced := obs.TraceEnabled()
				if traced {
					obs.Emit(obs.Event{Kind: obs.EvBegin, WID: uint16(wid)})
				}
				first := true
				retries := 0
				for {
					attemptStart := time.Now()
					err := worker.Attempt(unit.Proc, first, opts)
					if err == nil || errors.Is(err, cc.ErrIntentionalRollback) {
						break
					}
					if rpc.IsServerBusy(err) {
						// Shed before any transaction started: back off for
						// at least the server's hint (jitter on top — see
						// rpc.BusyBackoff) and resubmit. The attempt keeps
						// first as-is — no timestamp was allocated, so this
						// is not a conflict retry.
						var busy *rpc.ErrServerBusy
						errors.As(err, &busy)
						if critical && busy.Cause == rpc.CauseDeadlineInfeasible {
							// The server judged the declared deadline
							// unreachable. Retrying the same absolute
							// deadline can only be shed again (it is even
							// later now), so count the miss and move on.
							if recording {
								critMisses[wid]++
								critSheds[wid]++
							}
							abandoned = true
							break
						}
						time.Sleep(rpc.BusyBackoff(busy.RetryAfter, &rng))
						continue
					}
					if !cc.IsAborted(err) {
						panic(fmt.Sprintf("harness: worker %d: non-retryable error: %v", wid, err))
					}
					cause := cc.CauseOf(err)
					if recording {
						aborts[wid]++
						causes[wid][cause]++
						retryCounts[wid]++
					}
					if traced {
						obs.Emit(obs.Event{
							Kind:  obs.EvAbort,
							WID:   uint16(wid),
							Cause: uint8(cause),
							Dur:   time.Since(attemptStart).Nanoseconds(),
						})
					}
					first = false
					retries++
					if cfg.Backoff {
						// Randomized exponential backoff in yields.
						rng = rng*6364136223846793005 + 1442695040888963407
						max := 1 << min(retries, 6)
						n := int(rng>>33) % max
						bd := breakdownOf(worker)
						t0 := time.Now()
						for i := 0; i < n; i++ {
							runtime.Gosched()
						}
						if bd != nil {
							bd.Add(stats.Backoff, time.Since(t0))
						}
						if traced {
							obs.Emit(obs.Event{Kind: obs.EvBackoff, WID: uint16(wid), Dur: time.Since(t0).Nanoseconds()})
						}
					} else {
						runtime.Gosched()
					}
					if traced {
						obs.Emit(obs.Event{Kind: obs.EvRetry, WID: uint16(wid)})
					}
					// Give up on transactions that started before the
					// deadline but cannot finish long after it (safety
					// valve; does not trigger in practice).
					if time.Since(txnStart) > cfg.Measure+30*time.Second {
						if admit != nil {
							<-admit
						}
						return
					}
				}
				if admit != nil {
					<-admit
				}
				if abandoned {
					continue
				}
				lat := time.Since(txnStart)
				if recording {
					commits[wid]++
					h.Record(lat.Nanoseconds())
					if deadlineMode {
						if critical {
							critCommits[wid]++
							critHists[wid].Record(lat.Nanoseconds())
							if lat > cfg.Deadline {
								// Committed, but past the declared budget:
								// still a miss from the client's view.
								critMisses[wid]++
							}
						} else {
							bgCommits[wid]++
							bgHists[wid].Record(lat.Nanoseconds())
						}
					}
				}
				if traced {
					obs.Emit(obs.Event{Kind: obs.EvCommit, WID: uint16(wid), Dur: lat.Nanoseconds()})
				}
			}
		}(wid)
	}
	// HTAP snapshot scanners: slots above the worker range, each looping
	// full-range snapshot scans until the deadline. Scans take no locks and
	// cannot abort; the liveRows check turns each scan into a
	// snapshot-atomicity probe (a torn multi-key churn txn miscounts).
	var (
		scanHists   = make([]*stats.Histogram, cfg.Scanners)
		scanCounts  = make([]uint64, cfg.Scanners)
		scanRows    = make([]uint64, cfg.Scanners)
		scanViol    atomic.Uint64
		scanViolMsg atomic.Pointer[string]
	)
	for i := 0; i < cfg.Scanners; i++ {
		scanHists[i] = stats.NewHistogram()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sw := ccdb.SnapshotWorker(uint16(cfg.Workers + 1 + i))
			for {
				now := time.Now()
				if now.After(deadline) {
					return
				}
				recording := now.After(recordAfter)
				t0 := time.Now()
				rows := 0
				sw.Begin()
				err := sw.SnapshotScan(scanTbl, scanFrom, scanTo, func(uint64, []byte) bool {
					rows++
					return true
				})
				sw.End()
				if err != nil || (scanLive > 0 && rows != scanLive) {
					scanViol.Add(1)
					msg := fmt.Sprintf("scanner %d: rows=%d want=%d err=%v", i+1, rows, scanLive, err)
					scanViolMsg.CompareAndSwap(nil, &msg)
				}
				if recording {
					scanCounts[i]++
					scanRows[i] += uint64(rows)
					scanHists[i].Record(time.Since(t0).Nanoseconds())
				}
				if cfg.ScanInterval > 0 {
					time.Sleep(cfg.ScanInterval)
				} else {
					runtime.Gosched()
				}
			}
		}(i)
	}

	// Mark the measurement window's actual start for throughput math.
	measureStart = recordAfter
	wg.Wait()
	if v := scanViol.Load(); v > 0 {
		return nil, fmt.Errorf("harness: %d inconsistent snapshot scans (first: %s)", v, *scanViolMsg.Load())
	}
	elapsed := time.Since(measureStart)
	if elapsed > cfg.Measure {
		elapsed = cfg.Measure // workers stop at the deadline
	}

	m := &stats.Metrics{
		Label:   cfg.label() + "/" + cfg.Workload.Name(),
		Workers: clientN, // offered concurrency: sessions in M:N mode
		Elapsed: elapsed,
		Latency: stats.MergeAll(hists[1:]),
	}
	for wid := 1; wid <= clientN; wid++ {
		m.Commits += commits[wid]
		m.Aborts += aborts[wid]
		m.Retries += retryCounts[wid]
		for c := range causes[wid] {
			m.AbortsByCause[c] += causes[wid][c]
		}
		if bd := breakdownOf(workers[wid]); bd != nil {
			m.Breakdown.Merge(bd)
		}
	}
	if cfg.Scanners > 0 {
		for i := 0; i < cfg.Scanners; i++ {
			m.SnapshotScans += scanCounts[i]
			m.ScanRows += scanRows[i]
		}
		m.ScanLatency = stats.MergeAll(scanHists)
	}
	if deadlineMode {
		m.DeadlineBudget = cfg.Deadline
		m.CritLatency = stats.MergeAll(critHists[1:])
		m.BgLatency = stats.MergeAll(bgHists[1:])
		for wid := 1; wid <= clientN; wid++ {
			m.CritCommits += critCommits[wid]
			m.CritMisses += critMisses[wid]
			m.CritSheds += critSheds[wid]
			m.BgCommits += bgCommits[wid]
		}
		if sched != nil {
			st := sched.Stats()
			m.SchedSteals = st.Steals
			m.SchedAged = st.Aged
		}
	}
	if cfg.Trace {
		m.Attribution = obs.BuildAttribution()
	}
	if cfg.CaptureMem {
		ccdb.FlushReclaim()
		if ccdb.MVCCEnabled() {
			m.VersionNodes = ccdb.VersionPool().Live()
			m.VersionNodesFree = ccdb.VersionPool().FreeCount()
		}
		m.TableBytes = ccdb.TableBytes()
		m.RecordsReclaimed = obs.Metrics().RecordsReclaimed.Load() - baseReclaimed
		m.RecordsRecycled = obs.Metrics().RecordsRecycled.Load() - baseRecycled
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		m.HeapBytes = ms.HeapAlloc
		// Keep the database reachable across the GC above, or HeapAlloc
		// would exclude the very slabs TableBytes just counted.
		runtime.KeepAlive(ccdb)
	}
	return m, nil
}

// breakdownOf fetches a worker's breakdown if instrumented.
func breakdownOf(w cc.Worker) *stats.Breakdown {
	return w.Breakdown()
}

// engineFor builds the engine for a config via the public factory.
func engineFor(cfg Config) (cc.Engine, error) {
	d, err := db.Open(db.Options{
		Protocol:    cfg.Protocol,
		Workers:     1, // engine factory only; the real DB is built here
		SlackFactor: cfg.SlackFactor,
	})
	if err != nil {
		return nil, err
	}
	return d.Engine(), nil
}
