package harness

import (
	"fmt"
	"io"
	"time"

	"repro/db"
	"repro/internal/stats"
	"repro/internal/workload/tpcc"
	"repro/internal/workload/ycsb"
)

// Scale controls how big the experiment runs are. The paper's hardware was
// a 36-core dual-socket server; this reproduction targets whatever machine
// it runs on, so thread sweeps and durations are configurable.
type Scale struct {
	// Threads is the worker sweep for throughput/latency curves.
	Threads []int
	// TPCCThreads is the (usually smaller) sweep for TPC-C figures —
	// loading a warehouse costs far more than measuring it, so the sweep
	// is kept tighter.
	TPCCThreads []int
	// FixedThreads is the worker count for single-point figures (the
	// paper uses 20).
	FixedThreads int
	// Warmup and Measure are per-run phases.
	Warmup  time.Duration
	Measure time.Duration
	// Records scales the YCSB table (paper: 10M rows; scaled down for
	// laptop-class machines — contention lives in the Zipfian head, which
	// is insensitive to table size).
	Records int
	// RecordSize is the YCSB row size (paper default 1 KB).
	RecordSize int
	// Trace runs the breakdown figures with the obs tracer on, adding a
	// per-phase latency attribution table and abort-cause counts to their
	// output.
	Trace bool
}

// DefaultScale suits a small machine; QuickScale is for smoke runs.
func DefaultScale() Scale {
	return Scale{
		Threads:      []int{1, 2, 4, 8, 12, 16, 20, 24, 32},
		TPCCThreads:  []int{2, 8, 16},
		FixedThreads: 20,
		Warmup:       500 * time.Millisecond,
		Measure:      3 * time.Second,
		Records:      100_000,
		RecordSize:   1024,
	}
}

// QuickScale shrinks everything for fast smoke runs and unit benches.
func QuickScale() Scale {
	return Scale{
		Threads:      []int{2, 8, 16},
		TPCCThreads:  []int{2, 8},
		FixedThreads: 8,
		Warmup:       100 * time.Millisecond,
		Measure:      500 * time.Millisecond,
		Records:      20_000,
		RecordSize:   256,
	}
}

// ycsbCfg builds a YCSB config at the scale.
func (sc Scale) ycsbCfg(base ycsb.Config) ycsb.Config {
	base.Records = sc.Records
	base.RecordSize = sc.RecordSize
	return base
}

// needsBackoff reports whether the protocol livelocks without retry
// backoff: NO_WAIT/Silo/TicToc/MOCC retries carry no priority, and
// WAIT_DIE's young victims must back off or they re-barge past the older
// waiter forever (DBx1000 applies abort backoff to these schemes too).
// WOUND_WAIT and Plor need none — wounding plus oldest-first queues already
// guarantee progress.
func needsBackoff(p db.Protocol) bool {
	switch p {
	case db.NoWait, db.WaitDie, db.Silo, db.TicToc, db.MOCC:
		return true
	}
	return false
}

// runAndPrint executes one configuration and prints its row.
func runAndPrint(w io.Writer, cfg Config) (*stats.Metrics, error) {
	m, err := Run(cfg)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, m.Row())
	return m, nil
}

// sweep runs cfg across the thread counts, printing one row per point.
func sweep(w io.Writer, sc Scale, mk func(threads int) Config) error {
	for _, n := range sc.Threads {
		if _, err := runAndPrint(w, mk(n)); err != nil {
			return err
		}
	}
	return nil
}

// sweepTPCC is sweep over the TPC-C thread list.
func sweepTPCC(w io.Writer, sc Scale, mk func(threads int) Config) error {
	threads := sc.TPCCThreads
	if len(threads) == 0 {
		threads = sc.Threads
	}
	for _, n := range threads {
		if _, err := runAndPrint(w, mk(n)); err != nil {
			return err
		}
	}
	return nil
}

// Fig1 reproduces the motivation experiment (§2.3): 2PL variants vs Silo
// on YCSB-A at low (θ=0.5) and high (θ=0.99) skew, sweeping threads.
func Fig1(w io.Writer, sc Scale) error {
	protos := []db.Protocol{db.NoWait, db.WaitDie, db.WoundWait, db.Silo}
	for _, theta := range []float64{0.5, 0.99} {
		fmt.Fprintf(w, "--- Fig 1: YCSB-A θ=%.2f (999p latency vs throughput) ---\n", theta)
		for _, p := range protos {
			cfg := sc.ycsbCfg(ycsb.A())
			cfg.Theta = theta
			err := sweep(w, sc, func(n int) Config {
				return Config{Protocol: p, Workers: n, Warmup: sc.Warmup, Measure: sc.Measure,
					Backoff: needsBackoff(p), Workload: NewYCSB(cfg, n)}
			})
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// allProtocols is the seven-way comparison of Figs. 6-9.
func allProtocols() []db.Protocol {
	return []db.Protocol{db.NoWait, db.WaitDie, db.WoundWait, db.Silo, db.MOCC, db.TicToc, db.Plor}
}

// Fig6 reproduces Fig. 6: YCSB-A θ=0.99 stored procedures — (a) 999p vs
// throughput across the thread sweep, (b) latency CDF at FixedThreads.
func Fig6(w io.Writer, sc Scale) error {
	fmt.Fprintln(w, "--- Fig 6a: YCSB-A (θ=0.99, 50r/50w) 999p vs throughput ---")
	for _, p := range allProtocols() {
		err := sweep(w, sc, func(n int) Config {
			return Config{Protocol: p, Workers: n, Warmup: sc.Warmup, Measure: sc.Measure,
				Backoff: needsBackoff(p), Workload: NewYCSB(sc.ycsbCfg(ycsb.A()), n)}
		})
		if err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "--- Fig 6b: latency CDF at %d workers (0.99+ quantiles) ---\n", sc.FixedThreads)
	for _, p := range allProtocols() {
		m, err := Run(Config{Protocol: p, Workers: sc.FixedThreads, Warmup: sc.Warmup,
			Measure: sc.Measure, Backoff: needsBackoff(p),
			Workload: NewYCSB(sc.ycsbCfg(ycsb.A()), sc.FixedThreads)})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s CDF tail:\n%s", m.Label, stats.FormatCDF(m.Latency, 0.99))
	}
	return nil
}

// Fig7 reproduces Fig. 7: TPC-C with one warehouse, stored procedures.
func Fig7(w io.Writer, sc Scale) error {
	fmt.Fprintln(w, "--- Fig 7a: TPC-C (1 warehouse) 999p vs throughput ---")
	for _, p := range allProtocols() {
		err := sweepTPCC(w, sc, func(n int) Config {
			return Config{Protocol: p, Workers: n, Warmup: sc.Warmup, Measure: sc.Measure,
				Backoff: needsBackoff(p), Workload: NewTPCC(tpcc.DefaultConfig(), n)}
		})
		if err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "--- Fig 7b: latency CDF at %d workers (0.90+ quantiles) ---\n", sc.FixedThreads)
	for _, p := range allProtocols() {
		m, err := Run(Config{Protocol: p, Workers: sc.FixedThreads, Warmup: sc.Warmup,
			Measure: sc.Measure, Backoff: needsBackoff(p),
			Workload: NewTPCC(tpcc.DefaultConfig(), sc.FixedThreads)})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s CDF tail:\n%s", m.Label, stats.FormatCDF(m.Latency, 0.90))
	}
	return nil
}

// Fig8 reproduces Fig. 8: interactive processing over the simulated
// network, YCSB-A and TPC-C, including Plor+DWA.
func Fig8(w io.Writer, sc Scale) error {
	protos := append(allProtocols(), db.PlorDWA)
	const rtt = 4 * time.Microsecond // eRPC-over-InfiniBand ballpark
	fmt.Fprintln(w, "--- Fig 8a: interactive YCSB-A ---")
	for _, p := range protos {
		err := sweep(w, sc, func(n int) Config {
			return Config{Protocol: p, Workers: n, Warmup: sc.Warmup, Measure: sc.Measure,
				Interactive: true, RTT: rtt, Backoff: needsBackoff(p),
				Workload: NewYCSB(sc.ycsbCfg(ycsb.A()), n)}
		})
		if err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "--- Fig 8b: interactive TPC-C (1 warehouse) ---")
	for _, p := range protos {
		err := sweepTPCC(w, sc, func(n int) Config {
			return Config{Protocol: p, Workers: n, Warmup: sc.Warmup, Measure: sc.Measure,
				Interactive: true, RTT: rtt, Backoff: needsBackoff(p),
				Workload: NewTPCC(tpcc.DefaultConfig(), n)}
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Fig9 reproduces Fig. 9: varying contention — YCSB-A θ ∈ {0.3..0.99} and
// TPC-C warehouses ∈ {1..20}, at FixedThreads workers.
func Fig9(w io.Writer, sc Scale) error {
	fmt.Fprintln(w, "--- Fig 9a: YCSB-A with varying skew ---")
	for _, theta := range []float64{0.3, 0.5, 0.7, 0.9, 0.99} {
		for _, p := range allProtocols() {
			cfg := sc.ycsbCfg(ycsb.A())
			cfg.Theta = theta
			label := fmt.Sprintf("%s θ=%.2f", p, theta)
			if _, err := runAndPrint(w, Config{Protocol: p, Workers: sc.FixedThreads,
				Warmup: sc.Warmup, Measure: sc.Measure, Backoff: needsBackoff(p),
				Label: label, Workload: NewYCSB(cfg, sc.FixedThreads)}); err != nil {
				return err
			}
		}
	}
	fmt.Fprintln(w, "--- Fig 9b: TPC-C with varying warehouses ---")
	for _, wh := range []int{1, 2, 4} {
		for _, p := range allProtocols() {
			cfg := tpcc.DefaultConfig()
			cfg.Warehouses = wh
			label := fmt.Sprintf("%s wh=%d", p, wh)
			if _, err := runAndPrint(w, Config{Protocol: p, Workers: sc.FixedThreads,
				Warmup: sc.Warmup, Measure: sc.Measure, Backoff: needsBackoff(p),
				Label: label, Workload: NewTPCC(cfg, sc.FixedThreads)}); err != nil {
				return err
			}
		}
	}
	return nil
}

// Fig10 reproduces Fig. 10: YCSB-B throughput scaling with 1 KB and small
// records.
func Fig10(w io.Writer, sc Scale) error {
	for _, size := range []int{sc.RecordSize, 16} {
		fmt.Fprintf(w, "--- Fig 10: YCSB-B (θ=0.5, 95r/5w) record size %dB ---\n", size)
		for _, p := range allProtocols() {
			cfg := sc.ycsbCfg(ycsb.B())
			cfg.RecordSize = size
			err := sweep(w, sc, func(n int) Config {
				return Config{Protocol: p, Workers: n, Warmup: sc.Warmup, Measure: sc.Measure,
					Backoff: needsBackoff(p), Workload: NewYCSB(cfg, n)}
			})
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// plorFactors are the Fig. 11/12 ablation configurations.
func plorFactors() []struct {
	Label    string
	Protocol db.Protocol
} {
	return []struct {
		Label    string
		Protocol db.Protocol
	}{
		{"WOUND_WAIT", db.WoundWait},
		{"Baseline-PLOR", db.PlorBase},
		{"+LF-Locker", db.Plor},
		{"+DWA", db.PlorDWA},
	}
}

// Fig11 reproduces Fig. 11: the factor analysis on YCSB-B′ (θ=0.8) and
// YCSB-A.
func Fig11(w io.Writer, sc Scale) error {
	fmt.Fprintln(w, "--- Fig 11a: factor analysis, YCSB-B' (θ=0.8) throughput ---")
	for _, f := range plorFactors() {
		cfg := sc.ycsbCfg(ycsb.BPrime())
		if _, err := runAndPrint(w, Config{Protocol: f.Protocol, Workers: sc.FixedThreads,
			Warmup: sc.Warmup, Measure: sc.Measure, Label: f.Label,
			Workload: NewYCSB(cfg, sc.FixedThreads)}); err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "--- Fig 11b: factor analysis, YCSB-A 999p vs throughput ---")
	for _, f := range plorFactors() {
		err := sweep(w, sc, func(n int) Config {
			return Config{Protocol: f.Protocol, Workers: n, Warmup: sc.Warmup,
				Measure: sc.Measure, Label: f.Label,
				Workload: NewYCSB(sc.ycsbCfg(ycsb.A()), n)}
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Fig12 reproduces Fig. 12: the execution-time breakdown with abort
// ratios, at FixedThreads and at a higher thread count.
func Fig12(w io.Writer, sc Scale) error {
	configs := plorFactors()
	configs = append(configs, struct {
		Label    string
		Protocol db.Protocol
	}{"SILO", db.Silo}, struct {
		Label    string
		Protocol db.Protocol
	}{"TICTOC", db.TicToc})
	for _, threads := range []int{sc.FixedThreads, sc.FixedThreads + sc.FixedThreads/2} {
		fmt.Fprintf(w, "--- Fig 12: execution breakdown @ %d workers (YCSB-A) ---\n", threads)
		for _, f := range configs {
			m, err := Run(Config{Protocol: f.Protocol, Workers: threads,
				Warmup: sc.Warmup, Measure: sc.Measure, Instrument: true,
				Trace: sc.Trace, Backoff: needsBackoff(f.Protocol), Label: f.Label,
				Workload: NewYCSB(sc.ycsbCfg(ycsb.A()), threads)})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-16s %s\n", f.Label, m.Breakdown.String())
			fmt.Fprintf(w, "%-16s aborts: %s\n", "", m.CauseSummary())
			if m.Attribution != nil {
				fmt.Fprint(w, m.Attribution.Format())
			}
		}
	}
	return nil
}

// Fig13 reproduces Fig. 13: the effect of big-transaction size on tail
// latency, Plor vs Silo.
func Fig13(w io.Writer, sc Scale) error {
	fmt.Fprintln(w, "--- Fig 13: 999p latency vs big-transaction size (YCSB-A) ---")
	for _, p := range []db.Protocol{db.Plor, db.Silo} {
		for _, big := range []int{16, 32, 64, 128} {
			wl := NewYCSB(sc.ycsbCfg(ycsb.A()), sc.FixedThreads)
			wl.BigOps = big
			label := fmt.Sprintf("%s big=%d", p, big)
			if _, err := runAndPrint(w, Config{Protocol: p, Workers: sc.FixedThreads,
				Warmup: sc.Warmup, Measure: sc.Measure, Backoff: needsBackoff(p),
				Label: label, Workload: wl}); err != nil {
				return err
			}
		}
	}
	return nil
}

// Fig14 reproduces Fig. 14: persistent logging (redo and undo) on TPC-C.
func Fig14(w io.Writer, sc Scale) error {
	fmt.Fprintln(w, "--- Fig 14a: redo logging, TPC-C (1 warehouse) ---")
	for _, p := range allProtocols() {
		err := sweepTPCC(w, sc, func(n int) Config {
			return Config{Protocol: p, Workers: n, Warmup: sc.Warmup, Measure: sc.Measure,
				Logging: db.LogRedo, Backoff: needsBackoff(p),
				Workload: NewTPCC(tpcc.DefaultConfig(), n)}
		})
		if err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "--- Fig 14b: undo logging, TPC-C (1 warehouse; 2PL schemes + Plor only) ---")
	for _, p := range []db.Protocol{db.NoWait, db.WaitDie, db.WoundWait, db.Plor} {
		err := sweepTPCC(w, sc, func(n int) Config {
			return Config{Protocol: p, Workers: n, Warmup: sc.Warmup, Measure: sc.Measure,
				Logging: db.LogUndo, Backoff: needsBackoff(p),
				Workload: NewTPCC(tpcc.DefaultConfig(), n)}
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Fig14Durability is the Fig. 14 durability variant: redo logging on TPC-C
// at the fixed thread count, comparing the three WAL commit-path
// disciplines — sync (one device append per commit), group (batched epoch
// flush, commit waits for its epoch), and async (ack at publish time). The
// second block raises the simulated device latency to 2µs (flash-class
// rather than the paper's 100ns Optane figure), where batching commits into
// epochs matters far more.
func Fig14Durability(w io.Writer, sc Scale) error {
	protos := []db.Protocol{db.WoundWait, db.Silo, db.Plor}
	modes := []db.Durability{db.DurSync, db.DurGroup, db.DurAsync}
	run := func(lat time.Duration, tag string) error {
		for _, p := range protos {
			for _, dur := range modes {
				cfg := Config{Protocol: p, Workers: sc.FixedThreads,
					Warmup: sc.Warmup, Measure: sc.Measure,
					Logging: db.LogRedo, LogDurability: dur, LogLatency: lat,
					Backoff: needsBackoff(p),
					Label:   fmt.Sprintf("%s/%s%s", p, dur, tag),
					Workload: NewTPCC(tpcc.DefaultConfig(),
						sc.FixedThreads)}
				if _, err := runAndPrint(w, cfg); err != nil {
					return err
				}
			}
		}
		return nil
	}
	fmt.Fprintln(w, "--- Fig 14 (durability): redo logging, TPC-C, 100ns device ---")
	if err := run(0, ""); err != nil { // 0 = the paper's 100ns default
		return err
	}
	fmt.Fprintln(w, "--- Fig 14 (durability): redo logging, TPC-C, 2µs device ---")
	return run(2*time.Microsecond, "/2us")
}

// Fig15 reproduces Fig. 15: deadline commit priority (Plor-RT) vs arrival
// timestamps, on YCSB-A and TPC-C.
func Fig15(w io.Writer, sc Scale) error {
	type variant struct {
		Label string
		Proto db.Protocol
		SF    uint64
	}
	variants := []variant{
		{"PLOR", db.Plor, 0},
		{"PLOR_RT(SF=1K)", db.PlorRT, 1000},
		{"PLOR_RT(SF=10K)", db.PlorRT, 10000},
	}
	fmt.Fprintln(w, "--- Fig 15a: commit priority, YCSB-A ---")
	for _, v := range variants {
		err := sweep(w, sc, func(n int) Config {
			return Config{Protocol: v.Proto, SlackFactor: v.SF, Workers: n,
				Warmup: sc.Warmup, Measure: sc.Measure, Label: v.Label,
				Workload: NewYCSB(sc.ycsbCfg(ycsb.A()), n)}
		})
		if err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "--- Fig 15b: commit priority, TPC-C (1 warehouse) ---")
	for _, v := range variants {
		err := sweepTPCC(w, sc, func(n int) Config {
			return Config{Protocol: v.Proto, SlackFactor: v.SF, Workers: n,
				Warmup: sc.Warmup, Measure: sc.Measure, Label: v.Label,
				Workload: NewTPCC(tpcc.DefaultConfig(), n)}
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Figure is one reproducible experiment.
type Figure struct {
	ID    string
	Title string
	Run   func(w io.Writer, sc Scale) error
}

// Figures lists every figure of the paper's evaluation.
func Figures() []Figure {
	return []Figure{
		{"1", "Motivation: 2PL vs OCC tail latency and throughput", Fig1},
		{"6", "YCSB-A stored procedures: 999p vs throughput + CDF", Fig6},
		{"7", "TPC-C (1 warehouse) stored procedures", Fig7},
		{"8", "Interactive processing (YCSB-A, TPC-C)", Fig8},
		{"9", "Varying contention levels", Fig9},
		{"10", "YCSB-B throughput (1KB and small records)", Fig10},
		{"11", "Factor analysis (Baseline / +LF locker / +DWA)", Fig11},
		{"12", "Execution-time breakdown and abort ratios", Fig12},
		{"13", "Effect of big-transaction size on tail latency", Fig13},
		{"14", "Persistent logging: redo and undo modes", Fig14},
		{"14d", "Durability modes: sync vs group-commit vs async WAL", Fig14Durability},
		{"15", "Commit priority: deadlines (Plor-RT) vs arrival order", Fig15},
	}
}
