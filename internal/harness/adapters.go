package harness

import (
	"fmt"
	"runtime"

	"repro/internal/cc"
	"repro/internal/workload/tpcc"
	"repro/internal/workload/ycsb"
)

// autoYield decides whether workloads should yield between operations:
// required whenever workers can outnumber the processors actually running
// them, which is where operation-level interleaving would otherwise vanish.
func autoYield(workers int) bool {
	return workers > runtime.GOMAXPROCS(0)
}

// YCSB adapts the YCSB workload to the harness.
type YCSB struct {
	Cfg ycsb.Config
	// BigOps overrides the big-transaction size (Fig. 13 sweeps it).
	BigOps int
	// Seed offsets per-worker generator seeds.
	Seed int64
	// MarkReadOnly passes the read-only hint for all-read transactions,
	// routing them through Plor's §4.1.3 optimistic path. Off by default:
	// DBx1000's YCSB does not classify transactions, and the optimistic
	// path's row copies would shift Plor out of the no-copy group the
	// paper's Fig. 10 places it in. (TPC-C always marks Order-Status and
	// Stock-Level read-only, exercising the path either way.)
	MarkReadOnly bool

	w       *ycsb.Workload
	workers int
}

// NewYCSB builds the adapter; workers informs the yield heuristic.
func NewYCSB(cfg ycsb.Config, workers int) *YCSB {
	cfg.Yield = cfg.Yield || autoYield(workers)
	return &YCSB{Cfg: cfg, workers: workers}
}

// Name implements Workload.
func (y *YCSB) Name() string {
	return fmt.Sprintf("ycsb(θ=%.2f,r=%.0f%%)", y.Cfg.Theta, y.Cfg.ReadRatio*100)
}

// Setup implements Workload.
func (y *YCSB) Setup(d *cc.DB) { y.w = ycsb.Setup(d, y.Cfg) }

// NewSource implements Workload.
func (y *YCSB) NewSource(wid uint16) Source {
	g := y.w.NewGen(y.Seed*1000 + int64(wid))
	g.BigOpsOverride = y.BigOps
	return ycsbSource{g: g, markRO: y.MarkReadOnly}
}

type ycsbSource struct {
	g      *ycsb.Gen
	markRO bool
}

func (s ycsbSource) Next() Unit {
	t := s.g.Next()
	return Unit{Proc: t.Proc, ReadOnly: t.ReadOnly && s.markRO, Hint: len(t.Ops)}
}

// Hotspot adapts the hotspot workload (skewed YCSB + K ultra-hot rows,
// the plor-elr evaluation suite) to the harness.
type Hotspot struct {
	Cfg  ycsb.HotspotConfig
	Seed int64

	w *ycsb.Hotspot
}

// NewHotspot builds the adapter; workers informs the yield heuristic.
func NewHotspot(cfg ycsb.HotspotConfig, workers int) *Hotspot {
	cfg.Yield = cfg.Yield || autoYield(workers)
	return &Hotspot{Cfg: cfg}
}

// Name implements Workload.
func (h *Hotspot) Name() string {
	return fmt.Sprintf("hotspot(θ=%.2f,K=%d)", h.Cfg.Theta, h.Cfg.HotRows)
}

// Setup implements Workload.
func (h *Hotspot) Setup(d *cc.DB) { h.w = ycsb.SetupHotspot(d, h.Cfg) }

// NewSource implements Workload.
func (h *Hotspot) NewSource(wid uint16) Source {
	return hotspotSource{h.w.NewGen(h.Seed*1000 + int64(wid))}
}

// Loaded returns the loaded workload (nil before Setup); tests use its
// counter-sum invariant probe.
func (h *Hotspot) Loaded() *ycsb.Hotspot { return h.w }

type hotspotSource struct{ g *ycsb.HotspotGen }

func (s hotspotSource) Next() Unit {
	t := s.g.Next()
	return Unit{Proc: t.Proc, ReadOnly: t.ReadOnly, Hint: len(t.Ops)}
}

// Churn adapts the insert/delete churn workload (the bounded-memory
// experiment) to the harness. Workers is taken from the harness config so
// the key-space partition matches the worker fleet.
type Churn struct {
	Cfg ycsb.ChurnConfig

	w *ycsb.Churn
}

// NewChurn builds the adapter; workers partitions the key space.
func NewChurn(cfg ycsb.ChurnConfig, workers int) *Churn {
	cfg.Workers = workers
	cfg.Yield = cfg.Yield || autoYield(workers)
	return &Churn{Cfg: cfg}
}

// Name implements Workload.
func (c *Churn) Name() string {
	return fmt.Sprintf("churn(n=%d,pairs=%d)", c.Cfg.Records, c.Cfg.Pairs)
}

// Setup implements Workload.
func (c *Churn) Setup(d *cc.DB) { c.w = ycsb.SetupChurn(d, c.Cfg) }

// NewSource implements Workload.
func (c *Churn) NewSource(wid uint16) Source { return churnSource{c.w.NewGen(wid)} }

// ScanSpec implements ScanTarget: full key range, and since every churn
// transaction deletes and inserts the same number of keys, every
// consistent snapshot holds exactly Records live rows — the count doubles
// as the snapshot-atomicity check. (Requires Cfg.Ordered for the B+tree.)
func (c *Churn) ScanSpec() (string, uint64, uint64, int) {
	return ycsb.ChurnTableName, 0, ^uint64(0), c.Cfg.Records
}

type churnSource struct{ g *ycsb.ChurnGen }

func (s churnSource) Next() Unit {
	t := s.g.Next()
	return Unit{Proc: t.Proc, Hint: s.g.Hint()}
}

// TPCC adapts the TPC-C workload to the harness.
type TPCC struct {
	Cfg  tpcc.Config
	Seed int64

	w       *tpcc.Workload
	workers int
}

// NewTPCC builds the adapter.
func NewTPCC(cfg tpcc.Config, workers int) *TPCC {
	cfg.Yield = cfg.Yield || autoYield(workers)
	return &TPCC{Cfg: cfg, workers: workers}
}

// Name implements Workload.
func (t *TPCC) Name() string { return fmt.Sprintf("tpcc(wh=%d)", t.Cfg.Warehouses) }

// Setup implements Workload.
func (t *TPCC) Setup(d *cc.DB) { t.w = tpcc.Setup(d, t.Cfg) }

// NewSource implements Workload.
func (t *TPCC) NewSource(wid uint16) Source {
	return tpccSource{t.w.NewGen(wid, t.Seed*1000+int64(wid))}
}

type tpccSource struct{ g *tpcc.Gen }

func (s tpccSource) Next() Unit {
	t := s.g.Next()
	return Unit{Proc: t.Proc, ReadOnly: t.ReadOnly, Hint: t.Hint, Snap: t.SnapProc}
}
