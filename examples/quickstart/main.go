// Quickstart: open a Plor database, create a table, and run transactions
// through the public API — inserts, reads, read-modify-writes, deletes, and
// a range scan.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"repro/db"
)

func enc(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func dec(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

func main() {
	// Open an engine. Protocol is pluggable: try db.Silo or db.WoundWait.
	d, err := db.Open(db.Options{Protocol: db.Plor, Workers: 2})
	if err != nil {
		log.Fatal(err)
	}

	// An ordered table supports point ops and range scans. Rows are
	// fixed-size byte slices; this example stores one uint64 per row.
	inventory := d.CreateTable("inventory", 8, db.Ordered, 1024)

	// Bulk-load outside transactions (no CC cost).
	for sku := uint64(1); sku <= 10; sku++ {
		d.Load(inventory, sku, enc(sku*100))
	}

	w := d.Worker(1)

	// A read-modify-write transaction. Run retries conflict aborts until
	// the transaction commits; the closure must simply return any error a
	// Tx method hands it.
	attempts, err := w.Run(func(tx db.Tx) error {
		stock, err := tx.ReadForUpdate(inventory, 3)
		if err != nil {
			return err
		}
		return tx.Update(inventory, 3, enc(dec(stock)-25))
	}, db.TxnOpts{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decremented sku 3 in %d attempt(s)\n", attempts)

	// Inserts and deletes are transactional too.
	if _, err := w.Run(func(tx db.Tx) error {
		if err := tx.Insert(inventory, 11, enc(42)); err != nil {
			return err
		}
		return tx.Delete(inventory, 10)
	}, db.TxnOpts{}); err != nil {
		log.Fatal(err)
	}

	// A read-committed range scan (what TPC-C's Stock-Level uses).
	if _, err := w.Run(func(tx db.Tx) error {
		fmt.Println("inventory:")
		return tx.ScanRC(inventory, 0, ^uint64(0), func(sku uint64, row []byte) bool {
			fmt.Printf("  sku %2d = %d\n", sku, dec(row))
			return true
		})
	}, db.TxnOpts{ReadOnly: true}); err != nil {
		log.Fatal(err)
	}
}
