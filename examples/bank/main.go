// Bank: concurrent transfers over a small set of hot accounts while an
// auditor continuously verifies that money is conserved — a compact
// serializability demonstration. Run it under different protocols:
//
//	go run ./examples/bank                # Plor (default)
//	go run ./examples/bank -protocol SILO
//	go run ./examples/bank -protocol WOUND_WAIT
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"repro/db"
)

const (
	accounts = 32
	initial  = 1_000
	tellers  = 6
)

func enc(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func dec(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

func main() {
	protocol := flag.String("protocol", "PLOR", "concurrency control protocol")
	duration := flag.Duration("duration", 2*time.Second, "run duration")
	flag.Parse()

	d, err := db.Open(db.Options{Protocol: db.Protocol(*protocol), Workers: tellers + 1})
	if err != nil {
		log.Fatal(err)
	}
	acct := d.CreateTable("accounts", 8, db.Hashed, accounts)
	for a := uint64(0); a < accounts; a++ {
		d.Load(acct, a, enc(initial))
	}

	var transfers, retries, audits atomic.Uint64
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup

	// Tellers move money between random accounts.
	for t := 1; t <= tellers; t++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			w := d.Worker(slot)
			rng := uint64(slot) * 0x9E3779B97F4A7C15
			for time.Now().Before(deadline) {
				rng = rng*6364136223846793005 + 1442695040888963407
				from, to := rng%accounts, (rng>>20)%accounts
				if from == to {
					continue
				}
				attempts, err := w.Run(func(tx db.Tx) error {
					src, err := tx.ReadForUpdate(acct, from)
					if err != nil {
						return err
					}
					if dec(src) == 0 {
						return nil // insufficient funds: commit a no-op
					}
					dst, err := tx.ReadForUpdate(acct, to)
					if err != nil {
						return err
					}
					if err := tx.Update(acct, from, enc(dec(src)-1)); err != nil {
						return err
					}
					return tx.Update(acct, to, enc(dec(dst)+1))
				}, db.TxnOpts{ResourceHint: 2})
				if err != nil {
					log.Fatal(err)
				}
				transfers.Add(1)
				retries.Add(uint64(attempts - 1))
			}
		}(t)
	}

	// The auditor's read-only snapshots must always balance.
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := d.Worker(tellers + 1)
		for time.Now().Before(deadline) {
			var sum uint64
			if _, err := w.Run(func(tx db.Tx) error {
				sum = 0
				for a := uint64(0); a < accounts; a++ {
					v, err := tx.Read(acct, a)
					if err != nil {
						return err
					}
					sum += dec(v)
				}
				return nil
			}, db.TxnOpts{ReadOnly: true, ResourceHint: accounts}); err != nil {
				log.Fatal(err)
			}
			if sum != accounts*initial {
				log.Fatalf("AUDIT FAILED: total = %d, want %d", sum, accounts*initial)
			}
			audits.Add(1)
		}
	}()
	wg.Wait()

	fmt.Printf("%s: %d transfers (%d conflict retries), %d clean audits — money conserved\n",
		*protocol, transfers.Load(), retries.Load(), audits.Load())
}
