// Interactive spins up the storage engine as a real TCP server and drives
// it with interactive clients — the paper's §5 split-engine architecture,
// end to end, in one process. Each record operation is a network round
// trip; transaction logic lives entirely client-side.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync"

	"repro/db"
	"repro/internal/cc"
	"repro/internal/rpc"
)

func enc(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func dec(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

func main() {
	// Server side: a Plor storage engine with one counter table.
	d, err := db.Open(db.Options{Protocol: db.Plor, Workers: 8})
	if err != nil {
		log.Fatal(err)
	}
	counters := d.CreateTable("counters", 8, db.Hashed, 16)
	d.Load(counters, 0, enc(0))

	srv := rpc.NewServer(d.Engine(), d.Inner())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("storage engine listening on", addr)

	// Client side: four sessions, each incrementing the shared counter
	// 50 times. Every ReadForUpdate/Update/Commit is an RPC.
	const sessions, increments = 4, 50
	var wg sync.WaitGroup
	for s := 1; s <= sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			tr, err := rpc.DialTCP(addr)
			if err != nil {
				log.Fatal(err)
			}
			defer tr.Close()
			w := rpc.NewClientWorker(tr, d.Inner().Tables(), uint16(s))
			tbl := d.Inner().Tables()[0]
			for i := 0; i < increments; i++ {
				first := true
				for {
					err := w.Attempt(func(tx cc.Tx) error {
						v, err := tx.ReadForUpdate(tbl, 0)
						if err != nil {
							return err
						}
						return tx.Update(tbl, 0, enc(dec(v)+1))
					}, first, cc.AttemptOpts{})
					if err == nil {
						break
					}
					if !cc.IsAborted(err) {
						log.Fatal(err)
					}
					first = false // retry keeps Plor's original timestamp
				}
			}
		}(s)
	}
	wg.Wait()

	// Read the final value through one more interactive session.
	tr, err := rpc.DialTCP(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()
	w := rpc.NewClientWorker(tr, d.Inner().Tables(), sessions+1)
	if err := w.Attempt(func(tx cc.Tx) error {
		v, err := tx.Read(d.Inner().Tables()[0], 0)
		if err != nil {
			return err
		}
		fmt.Printf("counter = %d (want %d) — no update lost across %d interactive sessions\n",
			dec(v), sessions*increments, sessions)
		return nil
	}, true, cc.AttemptOpts{}); err != nil {
		log.Fatal(err)
	}
}
