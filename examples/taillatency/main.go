// Taillatency reproduces the paper's headline claim as a self-contained
// demo: run the same contended YCSB-A-style workload under Silo (OCC) and
// Plor, and compare median vs 99.9th-percentile latency. Expect similar
// medians and throughput, but an order-of-magnitude gap at the tail —
// because Plor retries an aborted transaction with its original timestamp,
// aging it into the highest-priority transaction, while Silo's retries
// start from scratch every time.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/db"
	"repro/internal/harness"
	"repro/internal/workload/ycsb"
)

func main() {
	workers := flag.Int("workers", 8, "concurrent workers")
	duration := flag.Duration("duration", 3*time.Second, "measurement duration per protocol")
	flag.Parse()

	cfg := ycsb.A() // 50% reads / 50% writes, zipfian θ=0.99: high contention
	cfg.Records = 50_000
	cfg.RecordSize = 256

	fmt.Printf("hot-key workload, %d workers, %v per protocol\n\n", *workers, *duration)
	type result struct {
		name string
		m    interface {
			Throughput() float64
			P50us() float64
			P999us() float64
		}
	}
	var rows []result
	for _, p := range []db.Protocol{db.Silo, db.Plor} {
		m, err := harness.Run(harness.Config{
			Protocol: p,
			Workers:  *workers,
			Warmup:   300 * time.Millisecond,
			Measure:  *duration,
			Backoff:  p == db.Silo,
			Workload: harness.NewYCSB(cfg, *workers),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s  %9.0f txn/s   p50 %7.1f µs   p99.9 %8.1f µs\n",
			p, m.Throughput(), m.P50us(), m.P999us())
		rows = append(rows, result{string(p), m})
	}
	if len(rows) == 2 {
		silo, plor := rows[0].m, rows[1].m
		fmt.Printf("\nPlor tail improvement: %.1fx lower p99.9 at %.2fx the throughput\n",
			silo.P999us()/plor.P999us(), plor.Throughput()/silo.Throughput())
	}
}
