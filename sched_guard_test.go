package repro

import (
	"encoding/binary"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/rpc"
)

func guardU64(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}

func guardDecode(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// TestSchedSaturationGuard is the overload regression guard for the M:N
// serving layer: far more closed-loop sessions than the runnable queue
// admits must SHED (typed StatusBusy, counted by the client), not collapse
// (admitted throughput stays up) and not queue without bound (admitted-txn
// p999 stays orders of magnitude below the run length). Every admitted
// transaction must be durable exactly once — a silent drop or a double
// apply shows up as a per-session counter mismatch. Skipped under -short
// and under the race detector (instrumentation distorts the timing).
func TestSchedSaturationGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard: needs real measurement time")
	}
	if raceEnabled {
		t.Skip("timing guard: race instrumentation distorts the measurement")
	}
	const (
		sessions  = 48
		executors = 2
		queueCap  = 4
		baseKey   = uint64(1000)
		runFor    = 300 * time.Millisecond
		p999Bound = 250 * time.Millisecond
		minTxns   = 200
	)
	e := core.New(core.Options{})
	ccdb := cc.NewDB(4, e.TableOpts())
	tbl := ccdb.CreateTable("t", 8, cc.OrderedIndex, 256)
	for s := 0; s < sessions; s++ {
		ccdb.LoadRecord(tbl, baseKey+uint64(s), guardU64(0))
	}
	sched := rpc.NewScheduler(e, ccdb, rpc.SchedConfig{
		Executors: executors, QueueCap: queueCap, RetryAfter: 500 * time.Microsecond})
	defer sched.Close()

	var (
		mu        sync.Mutex
		latencies []time.Duration
		sheds     atomic.Int64
	)
	commits := make([]uint64, sessions)
	deadline := time.Now().Add(runFor)
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		tr := rpc.NewSchedChanTransport(sched, 0)
		if tr == nil {
			t.Fatal("register refused")
		}
		wg.Add(1)
		go func(s int, tr *rpc.SchedChanTransport) {
			defer wg.Done()
			defer tr.Close()
			// Interactive per-op frames: each transaction holds its executor
			// across several round trips, so offered load far exceeds the
			// pool's capacity and the queue-full path must engage.
			w := rpc.NewClientWorker(tr, ccdb.Tables(), uint16(s%60+1))
			key := baseKey + uint64(s)
			var local []time.Duration
			for time.Now().Before(deadline) {
				first := true
				for {
					t0 := time.Now()
					err := w.Attempt(func(tx cc.Tx) error {
						v, err := tx.ReadForUpdate(tbl, key)
						if err != nil {
							return err
						}
						return tx.Update(tbl, key, guardU64(guardDecode(v)+1))
					}, first, cc.AttemptOpts{})
					if err == nil {
						local = append(local, time.Since(t0))
						commits[s]++
						break
					}
					var busy *rpc.ErrServerBusy
					if errors.As(err, &busy) {
						sheds.Add(1)
						d := busy.RetryAfter
						if d <= 0 || d > 2*time.Millisecond {
							d = 500 * time.Microsecond
						}
						time.Sleep(d)
						continue // Begin was refused: the txn never started
					}
					if cc.IsAborted(err) {
						first = false
						continue
					}
					t.Errorf("session %d: unexpected error: %v", s, err)
					return
				}
			}
			mu.Lock()
			latencies = append(latencies, local...)
			mu.Unlock()
		}(s, tr)
	}
	wg.Wait()

	var total uint64
	for _, c := range commits {
		total += c
	}
	if total < minTxns {
		t.Fatalf("overloaded scheduler collapsed: %d admitted txns in %v (want >= %d)", total, runFor, minTxns)
	}
	if sheds.Load() == 0 {
		t.Fatalf("offered load %dx the queue cap never shed: admission control is not engaging", sessions/queueCap)
	}

	// Exactly-once accounting: each session's private counter must equal its
	// commit count — a silently dropped (or doubly applied) admitted txn
	// breaks the equality.
	vtr := rpc.NewSchedChanTransport(sched, 0)
	if vtr == nil {
		t.Fatal("verify register refused")
	}
	defer vtr.Close()
	vw := rpc.NewClientWorker(vtr, ccdb.Tables(), 60)
	for s := 0; s < sessions; s++ {
		var got uint64
		err := vw.Attempt(func(tx cc.Tx) error {
			v, err := tx.Read(tbl, baseKey+uint64(s))
			if err != nil {
				return err
			}
			got = guardDecode(v)
			return nil
		}, true, cc.AttemptOpts{})
		if err != nil {
			t.Fatalf("verify read %d: %v", s, err)
		}
		if got != commits[s] {
			t.Fatalf("session %d: counter=%d but client observed %d commits (silent drop or double apply)",
				s, got, commits[s])
		}
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p999 := latencies[len(latencies)*999/1000]
	if p999 > p999Bound {
		t.Fatalf("admitted-txn p999 = %v exceeds %v: admission control is not bounding queueing", p999, p999Bound)
	}
	t.Logf("admitted=%d sheds=%d p999=%v", total, sheds.Load(), p999)
}
