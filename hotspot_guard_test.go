package repro

import (
	"testing"
	"time"

	"repro/db"
	"repro/internal/harness"
	"repro/internal/workload/ycsb"
)

// TestHotspotELRGuard is the θ=0.99 hotspot regression guard: plor-elr must
// keep a clear throughput lead over plain plor on the ultra-hot single-row
// point (single counter row, 1-op RMW transactions, redo group commit on a
// 15µs device). The measured advantage is ~1.6×; the 1.15× floor absorbs
// scheduler noise while still catching a broken or disabled retire path,
// whose ratio is ~1.0×. Skipped under -short and under the race detector
// (instrumentation distorts the timing the guard measures).
func TestHotspotELRGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard: needs real measurement time")
	}
	if raceEnabled {
		t.Skip("timing guard: race instrumentation distorts the ratio")
	}
	run := func(p db.Protocol) float64 {
		cfg := ycsb.HotspotDefaults()
		cfg.Records = 20_000
		cfg.HotRows = 1
		cfg.Ops = 1
		cfg.ReadRatio = 0
		m, err := harness.Run(harness.Config{Protocol: p, Workers: benchWorkers,
			Warmup: 100 * time.Millisecond, Measure: 600 * time.Millisecond,
			Logging: db.LogRedo, LogDurability: db.DurGroup,
			LogFlushInterval: 20 * time.Microsecond, LogLatency: 15 * time.Microsecond,
			Workload: harness.NewHotspot(cfg, benchWorkers)})
		if err != nil {
			t.Fatal(err)
		}
		return m.Throughput()
	}
	// Two reps each, best-of: the guard compares capability, not noise.
	elr := max(run(db.PlorELR), run(db.PlorELR))
	plor := max(run(db.Plor), run(db.Plor))
	if elr < 1.15*plor {
		t.Fatalf("plor-elr hotspot advantage regressed: elr=%.0f tps vs plor=%.0f tps (ratio %.2f, want >= 1.15)",
			elr, plor, elr/plor)
	}
	t.Logf("plor-elr=%.0f tps plor=%.0f tps ratio=%.2f", elr, plor, elr/plor)
}
