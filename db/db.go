// Package db is the public API of the Plor reproduction: an embeddable
// in-memory transactional engine with pluggable concurrency control.
//
// Quick start:
//
//	d, _ := db.Open(db.Options{Protocol: db.Plor, Workers: 4})
//	accounts := d.CreateTable("accounts", 8, db.Ordered, 1024)
//	d.Load(accounts, 1, money(100))
//	w := d.Worker(1)
//	_, err := w.Run(func(tx db.Tx) error {
//	    v, err := tx.ReadForUpdate(accounts, 1)
//	    if err != nil { return err }
//	    return tx.Update(accounts, 1, addMoney(v, 50))
//	}, db.TxnOpts{})
//
// Each Worker owns one execution slot; workers are single-goroutine
// objects, one per concurrent executor (at most 63, a limit inherited from
// the latch-free locker's per-worker bitmap).
package db

import (
	"fmt"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/lock"
	"repro/internal/rpc"
	"repro/internal/stats"
	"repro/internal/txn"
	"repro/internal/wal"
)

// Protocol selects the concurrency-control scheme.
type Protocol string

// Supported protocols.
const (
	// Plor is the paper's contribution: pessimistic locking, optimistic
	// reading, WOUND_WAIT conflict resolution at commit.
	Plor Protocol = "PLOR"
	// PlorDWA is Plor with delayed write-lock acquisition (§4.1.4).
	PlorDWA Protocol = "PLOR+DWA"
	// PlorELR is Plor with early lock release (Bamboo-style): write locks
	// retire at the last-write point with the dirty image installed, so the
	// next waiter proceeds during the retirer's log flush. Dirty readers
	// take a commit dependency on the retirer and cascade-abort if it
	// aborts. Incompatible with MVCC and undo logging.
	PlorELR Protocol = "PLOR_ELR"
	// PlorBase is Plor with the mutex-based locker (Fig. 11 baseline).
	PlorBase Protocol = "PLOR_BASE"
	// PlorRT is Plor with real-time deadline commit priority (Fig. 15);
	// set Options.SlackFactor.
	PlorRT Protocol = "PLOR_RT"
	// NoWait, WaitDie and WoundWait are the 2PL variants of §2.1.
	NoWait    Protocol = "NO_WAIT"
	WaitDie   Protocol = "WAIT_DIE"
	WoundWait Protocol = "WOUND_WAIT"
	// Silo and TicToc are the OCC baselines of §2.2/§7.
	Silo   Protocol = "SILO"
	TicToc Protocol = "TICTOC"
	// MOCC is the hybrid baseline of §7.
	MOCC Protocol = "MOCC"
)

// Protocols lists every supported protocol in display order.
func Protocols() []Protocol {
	return []Protocol{NoWait, WaitDie, WoundWait, Silo, MOCC, TicToc, Plor, PlorELR}
}

// LogMode selects persistent logging (Fig. 14).
type LogMode int

// Logging modes.
const (
	LogOff LogMode = iota
	LogRedo
	LogUndo
)

// Durability selects how commits reach the log device (Fig. 14 variant):
// sync appends inline, group batches epochs and waits, async acks at
// publish time. See wal.Durability.
type Durability = wal.Durability

// Durability modes.
const (
	// DurSync performs one synchronous device append per commit.
	DurSync = wal.DurSync
	// DurGroup batches commits into flush epochs; commit waits for its
	// epoch, paying the device latency once per batch instead of per txn.
	DurGroup = wal.DurGroup
	// DurAsync returns from Commit without touching the device; durability
	// trails. A worker coalesces commits in a local buffer before handing
	// them to the flusher, so DB.FlushWAL covers only already-handed-off
	// commits — Worker.SyncWAL (called from the goroutine driving that
	// worker) or DB.Close is the full durability point. After a crash,
	// async recovery is per-transaction atomic but not necessarily
	// causally consistent across transactions (see wal.Recover).
	DurAsync = wal.DurAsync
)

// ParseDurability maps a flag string (sync, group, async) to a Durability.
func ParseDurability(s string) (Durability, bool) { return wal.ParseDurability(s) }

// IndexKind selects a table's index structure.
type IndexKind = cc.IndexKind

// Index kinds.
const (
	// Hashed is a hash index (point lookups only).
	Hashed = cc.HashIndex
	// Ordered is a B+tree (point lookups and range scans).
	Ordered = cc.OrderedIndex
)

// Tx is the operation interface stored procedures receive.
type Tx = cc.Tx

// Table is a table handle.
type Table = cc.Table

// Re-exported sentinel errors.
var (
	ErrNotFound  = cc.ErrNotFound
	ErrDuplicate = cc.ErrDuplicate
	ErrAborted   = cc.ErrAborted
)

// IsAborted reports whether err is a retryable conflict abort. Run retries
// these automatically; Attempt surfaces them.
func IsAborted(err error) bool { return cc.IsAborted(err) }

// Options configures Open.
type Options struct {
	// Protocol selects the CC scheme (default Plor).
	Protocol Protocol
	// Workers is the number of worker slots (1..63; default 1).
	Workers int
	// Logging selects WAL mode; LogSimLatency models the device's write
	// latency (default 100 ns, the paper's Optane DCPMM figure).
	Logging       LogMode
	LogSimLatency time.Duration
	// LogDurability selects the commit-path discipline (default DurSync);
	// LogFlushInterval is the group-commit coalescing window (0 = eager).
	LogDurability    Durability
	LogFlushInterval time.Duration
	// SlackFactor sets the Plor-RT deadline slack (PlorRT only).
	SlackFactor uint64
	// Instrument enables the per-worker execution-time breakdown.
	Instrument bool
	// NoReclaim disables epoch-based record reclamation: deleted and
	// abort-rolled-back records are abandoned instead of recycled, so
	// table memory grows with churn (the pre-reclamation behavior, kept
	// for A/B measurement).
	NoReclaim bool
	// MVCC enables per-record version chains: committed writes capture
	// their pre-image so snapshot read-only transactions (see ReadOnly)
	// can read a consistent cut with no locks and no aborts. Implied by
	// Scanners > 0. Incompatible with NoReclaim (version GC rides the
	// epoch reclaimer). One caveat: a committed delete keeps its key
	// index-linked until the snapshot watermark passes it, so re-inserting
	// a just-deleted key returns ErrDuplicate until version GC catches up.
	MVCC bool
	// Scanners reserves extra worker slots for snapshot readers, addressed
	// as ReadOnly(1..Scanners). Workers+Scanners must stay ≤ MaxWorkers.
	Scanners int
	// ShardID/ShardCount place this database in a multi-shard topology
	// (ShardCount > 1). The shard's timestamp oracle then mints only
	// timestamps ≡ ShardID (mod ShardCount), so wound-wait priorities drawn
	// on different shards never collide and form a single global order —
	// the property cross-shard transactions rely on. ShardCount must stay
	// ≤ txn.MaxShards (gtid encoding); single-shard databases leave both 0.
	ShardID    int
	ShardCount int
	// LogDevice, when non-nil, supplies the per-worker-log WAL device
	// (default: a fresh simulated device per Open). A multi-shard cluster
	// passes a factory that RETAINS devices across Open calls, so a shard
	// restart recovers from the same "durable" log it wrote before.
	LogDevice func(wid int) wal.Device
	// LockWaitBound caps how long a lock wait may block before the waiting
	// attempt aborts and retries (keeping its timestamp). Sharded databases
	// REQUIRE a bound: wounds cannot cross shard registries, so unbounded
	// waits can deadlock two cross-shard transactions forever. Zero selects
	// the default bound when ShardCount > 1 and leaves waits unbounded
	// otherwise. Arming is global to the process (see lock.SetWaitBound).
	LockWaitBound time.Duration
}

// DefaultLockWaitBound is the bounded-lock-wait escape armed for sharded
// databases when Options.LockWaitBound is zero. Generous against ordinary
// waits (in-process waits resolve in microseconds; cross-process waits in
// OS-scheduler timescales) so it only fires on genuine cross-shard stalls.
const DefaultLockWaitBound = 10 * time.Millisecond

// DB is an open database.
type DB struct {
	opts   Options
	engine cc.Engine
	inner  *cc.DB
}

// MaxWorkers is the largest supported worker count.
const MaxWorkers = txn.MaxWorkers

// Open creates a database.
func Open(opts Options) (*DB, error) {
	if opts.Protocol == "" {
		opts.Protocol = Plor
	}
	if opts.Workers == 0 {
		opts.Workers = 1
	}
	if opts.Workers < 1 || opts.Workers > MaxWorkers {
		return nil, fmt.Errorf("db: workers must be in [1,%d], got %d", MaxWorkers, opts.Workers)
	}
	if opts.Scanners > 0 {
		opts.MVCC = true
	}
	if opts.Scanners < 0 || opts.Workers+opts.Scanners > MaxWorkers {
		return nil, fmt.Errorf("db: workers+scanners must be in [1,%d], got %d+%d",
			MaxWorkers, opts.Workers, opts.Scanners)
	}
	if opts.MVCC && opts.Protocol == PlorELR {
		return nil, fmt.Errorf("db: %s is incompatible with MVCC (snapshot stamps assume install-at-commit)", PlorELR)
	}
	if opts.MVCC && opts.NoReclaim {
		return nil, fmt.Errorf("db: MVCC requires reclamation (version GC rides the epoch reclaimer)")
	}
	if opts.ShardCount < 0 || opts.ShardCount == 1 || opts.ShardCount > txn.MaxShards {
		return nil, fmt.Errorf("db: shard count must be 0 (unsharded) or in [2,%d], got %d",
			txn.MaxShards, opts.ShardCount)
	}
	if opts.ShardCount > 1 {
		if opts.ShardID < 0 || opts.ShardID >= opts.ShardCount {
			return nil, fmt.Errorf("db: shard id %d out of range [0,%d)", opts.ShardID, opts.ShardCount)
		}
		if opts.Logging == LogUndo {
			return nil, fmt.Errorf("db: sharded serving requires redo logging or none (prepared write sets are not in-place)")
		}
		if opts.Protocol == PlorELR {
			return nil, fmt.Errorf("db: %s cannot serve a shard (early lock release conflicts with holding prepared write sets)", PlorELR)
		}
	}
	engine, err := engineFor(opts)
	if err != nil {
		return nil, err
	}
	inner := cc.NewDBWithScanners(opts.Workers, opts.Scanners, engine.TableOpts())
	if opts.ShardCount > 1 {
		inner.Reg.SetTSShard(uint64(opts.ShardCount), uint64(opts.ShardID))
		bound := opts.LockWaitBound
		if bound == 0 {
			bound = DefaultLockWaitBound
		}
		lock.SetWaitBound(bound)
	} else if opts.LockWaitBound != 0 {
		lock.SetWaitBound(opts.LockWaitBound)
	}
	if opts.NoReclaim {
		inner.DisableReclamation()
	}
	if opts.MVCC {
		inner.EnableMVCC()
	}
	if opts.Logging != LogOff {
		mode := wal.Redo
		if opts.Logging == LogUndo {
			if !engine.SupportsUndoLogging() {
				return nil, fmt.Errorf("db: protocol %s cannot run undo logging (no in-place pre-commit writes)", opts.Protocol)
			}
			mode = wal.Undo
		}
		lat := opts.LogSimLatency
		if lat == 0 {
			lat = 100 * time.Nanosecond
		}
		mkDev := opts.LogDevice
		if mkDev == nil {
			mkDev = func(int) wal.Device { return wal.NewSimDevice(lat) }
		}
		inner.Log = wal.NewLoggerOpts(mode, opts.Workers, mkDev,
			wal.Options{Durability: opts.LogDurability, FlushInterval: opts.LogFlushInterval})
	}
	return &DB{opts: opts, engine: engine, inner: inner}, nil
}

// engineFor maps a Protocol to its engine.
func engineFor(opts Options) (cc.Engine, error) {
	switch opts.Protocol {
	case Plor:
		return core.New(core.Options{}), nil
	case PlorDWA:
		return core.New(core.Options{DWA: true}), nil
	case PlorELR:
		return core.New(core.Options{ELR: true}), nil
	case PlorBase:
		return core.New(core.Options{MutexLocker: true}), nil
	case PlorRT:
		sf := opts.SlackFactor
		if sf == 0 {
			sf = 1000
		}
		return core.New(core.Options{SlackFactor: sf}), nil
	case NoWait:
		return cc.NewTwoPL(lock.NoWait), nil
	case WaitDie:
		return cc.NewTwoPL(lock.WaitDie), nil
	case WoundWait:
		return cc.NewTwoPL(lock.WoundWait), nil
	case Silo:
		return cc.NewSilo(), nil
	case TicToc:
		return cc.NewTicToc(), nil
	case MOCC:
		return cc.NewMOCC(), nil
	}
	return nil, fmt.Errorf("db: unknown protocol %q", opts.Protocol)
}

// Close drains and stops the WAL group-commit flusher (if any) and closes
// the log devices. Stop all workers first; a DB without logging needs no
// Close (it is then a no-op).
func (d *DB) Close() error {
	if d.inner.Log == nil {
		return nil
	}
	return d.inner.Log.Close()
}

// FlushWAL forces a WAL flush round and waits until every commit handed to
// the flusher before the call is durable — the durability-wait for
// DurAsync users. Async commits a worker still buffers locally are not
// covered (Worker.SyncWAL or DB.Close hands them off); it is a no-op
// under DurSync and when logging is off.
func (d *DB) FlushWAL() error {
	if d.inner.Log == nil {
		return nil
	}
	return d.inner.Log.Flush()
}

// Engine exposes the underlying engine (for the benchmark harness).
func (d *DB) Engine() cc.Engine { return d.engine }

// SetDecisionResolver installs the cross-shard in-doubt resolver: given a
// gtid whose home is ANOTHER shard, it must return the home shard's durable
// commit decision (blocking until one is reachable — guessing violates
// atomicity). The shard-cluster layer wires this to an OpResolve RPC against
// the gtid's home; gtids homed at this shard are always answered locally.
func (d *DB) SetDecisionResolver(f func(gtid uint64) bool) { d.inner.ResolveRemote = f }

// Inner exposes the engine-level database (for the benchmark harness and
// the interactive-mode server).
func (d *DB) Inner() *cc.DB { return d.inner }

// CreateTable adds a table with fixed rowSize-byte rows. expected hints the
// hash index size.
func (d *DB) CreateTable(name string, rowSize int, kind IndexKind, expected int) *Table {
	return d.inner.CreateTable(name, rowSize, kind, expected)
}

// Table looks a table up by name (nil if absent).
func (d *DB) Table(name string) *Table { return d.inner.Table(name) }

// TableBytes returns the slab-backed memory footprint (rows plus record
// headers) across all tables. Slabs are never unmapped, so this is a
// high-water mark; with reclamation on it plateaus under churn.
func (d *DB) TableBytes() uint64 { return d.inner.TableBytes() }

// Load inserts a record outside any transaction (bulk loading). It reports
// whether the key was new.
func (d *DB) Load(t *Table, key uint64, val []byte) bool {
	return d.inner.LoadRecord(t, key, val) != nil
}

// Worker returns worker slot wid's executor (wid in [1, Workers]). Each
// slot must be driven by at most one goroutine.
func (d *DB) Worker(wid int) *Worker {
	if wid < 1 || wid > d.opts.Workers {
		panic(fmt.Sprintf("db: worker id %d out of range [1,%d]", wid, d.opts.Workers))
	}
	w := &Worker{
		inner: d.engine.NewWorker(d.inner, uint16(wid), d.opts.Instrument),
		wid:   uint16(wid),
	}
	if d.inner.Log != nil {
		w.log = d.inner.Log.Worker(uint16(wid))
	}
	return w
}

// TxnOpts parameterizes a transaction.
type TxnOpts struct {
	// ReadOnly enables read-only fast paths.
	ReadOnly bool
	// ResourceHint estimates records accessed (Plor-RT priority input).
	ResourceHint int
	// MaxAttempts bounds Run's retries (0 = unlimited).
	MaxAttempts int
}

// Proc is a stored procedure. It must return promptly when any Tx method
// fails, passing the error through.
type Proc = cc.Proc

// Worker executes transactions on one worker slot.
type Worker struct {
	inner cc.Worker
	wid   uint16
	log   *wal.WorkerLog // nil when logging is off
}

// WID returns the worker's slot id.
func (w *Worker) WID() uint16 { return w.wid }

// SyncWAL hands off any commits this worker still buffers locally (the
// DurAsync coalescing buffer) and waits until they are durable — the
// per-worker durability point DB.FlushWAL cannot provide, because the
// local buffer is worker-private state only this worker's goroutine may
// touch. Call it from the goroutine driving the worker. It is a no-op
// when logging is off or under DurSync (where commits are already durable).
func (w *Worker) SyncWAL() error {
	if w.log == nil {
		return nil
	}
	return w.log.Sync()
}

// Attempt runs a single attempt (no retry). It returns nil on commit, an
// IsAborted error on conflict, or proc's own error after rollback. first
// distinguishes a fresh transaction from a retry — Plor and the 2PL
// schemes keep the original timestamp across retries.
func (w *Worker) Attempt(proc Proc, first bool, opts TxnOpts) error {
	return w.inner.Attempt(proc, first, cc.AttemptOpts{
		ReadOnly:     opts.ReadOnly,
		ResourceHint: opts.ResourceHint,
	})
}

// Run executes proc to commit, retrying conflict aborts. It returns the
// number of attempts and the first non-retryable error (nil on commit).
func (w *Worker) Run(proc Proc, opts TxnOpts) (int, error) {
	attempts := 0
	first := true
	for {
		attempts++
		err := w.Attempt(proc, first, opts)
		if err == nil || !cc.IsAborted(err) {
			return attempts, err
		}
		if opts.MaxAttempts > 0 && attempts >= opts.MaxAttempts {
			return attempts, err
		}
		first = false
	}
}

// Breakdown returns the worker's execution-time accounting (nil unless
// Options.Instrument was set).
func (w *Worker) Breakdown() *stats.Breakdown { return w.inner.Breakdown() }

// ServeOptions configures NewServer's M:N session scheduler.
type ServeOptions struct {
	// Executors is the number of executor workers pulling sessions from the
	// runnable queue (default Options.Workers). Each owns one worker slot,
	// so Executors must not exceed the free slots.
	Executors int
	// MaxSessions caps registered sessions (0 = unlimited). Rejected
	// sessions receive a retryable busy status, never a silent drop.
	MaxSessions int
	// QueueCap bounds the runnable queue for newly arriving work; beyond it
	// the frame is shed with a busy status (0 = default 8192, negative =
	// unbounded).
	QueueCap int
	// SlackFactor enables deadline-infeasibility admission: a fresh
	// transaction with resource hint h that already waited more than
	// SlackFactor×h nanoseconds is shed instead of dispatched (0 = off).
	SlackFactor uint64
	// RetryAfter is the backoff hint carried on busy responses (default 2ms).
	RetryAfter time.Duration
	// FIFO disables deadline-aware scheduling: one arrival-ordered runnable
	// queue, no slack ordering, no declared-deadline shedding, no stealing —
	// the measured baseline. Transactions that declare wire deadlines still
	// run; they just get no preferential dispatch.
	FIFO bool
	// NoSteal keeps slack-ordered scheduling but disables executor
	// work-stealing (idle executors then rely on aging to rescue sessions
	// parked behind a busy executor).
	NoSteal bool
	// AgeAfter bounds no-deadline sessions' queue wait under sustained
	// deadline-class load: any session waiting longer is dispatched ahead of
	// the slack order (default 1ms).
	AgeAfter time.Duration
}

// NewServer builds an RPC server whose sessions are multiplexed onto a
// fixed executor pool: M client sessions (plain conns, mux sessions, or
// in-process transports) share Executors worker slots instead of leasing
// one slot each. Call Server.Shutdown when done — it releases the
// executor slots.
func (d *DB) NewServer(opts ServeOptions) *rpc.Server {
	return rpc.NewServerSched(d.engine, d.inner, rpc.SchedConfig{
		Executors:   opts.Executors,
		MaxSessions: opts.MaxSessions,
		QueueCap:    opts.QueueCap,
		SlackFactor: opts.SlackFactor,
		RetryAfter:  opts.RetryAfter,
		FIFO:        opts.FIFO,
		NoSteal:     opts.NoSteal,
		AgeAfter:    opts.AgeAfter,
	})
}

// ReadOnly returns scanner slot's snapshot executor (slot in
// [1, Options.Scanners]). Like Worker, each slot must be driven by at most
// one goroutine. Snapshot transactions read the newest committed state as
// of their begin timestamp and never conflict with writers: no locks, no
// validation, no aborts — the HTAP read class.
func (d *DB) ReadOnly(slot int) *ReadOnly {
	if slot < 1 || slot > d.opts.Scanners {
		panic(fmt.Sprintf("db: scanner slot %d out of range [1,%d]", slot, d.opts.Scanners))
	}
	return &ReadOnly{inner: d.inner.SnapshotWorker(uint16(d.opts.Workers + slot))}
}

// ReadOnly executes snapshot read-only transactions on one scanner slot.
type ReadOnly struct {
	inner *cc.SnapshotWorker
}

// View runs fn inside one snapshot transaction. fn cannot abort for
// concurrency reasons; any error it returns is passed through verbatim.
// Values handed to fn are only valid inside fn.
func (r *ReadOnly) View(fn func(tx *SnapTx) error) error {
	r.inner.Begin()
	defer r.inner.End()
	return fn(&SnapTx{sw: r.inner})
}

// Txns returns the number of snapshot transactions completed on this slot.
func (r *ReadOnly) Txns() uint64 { return r.inner.Txns }

// SnapTx is the operation handle View passes to a snapshot procedure.
type SnapTx struct {
	sw *cc.SnapshotWorker
}

// TS returns the transaction's snapshot timestamp: every commit stamped at
// or below it is visible, everything newer is not.
func (tx *SnapTx) TS() uint64 { return tx.sw.TS() }

// Read returns key's value as of the snapshot. The slice is valid until
// the next Read/Scan on this transaction.
func (tx *SnapTx) Read(t *Table, key uint64) ([]byte, error) {
	return tx.sw.Read(t, key)
}

// Scan walks [from, to] in key order at the snapshot (Ordered tables
// only). fn returning false stops the scan; val is valid only during fn.
func (tx *SnapTx) Scan(t *Table, from, to uint64, fn func(key uint64, val []byte) bool) error {
	return tx.sw.SnapshotScan(t, from, to, fn)
}
