package db_test

import (
	"encoding/binary"
	"errors"
	"sync"
	"testing"

	"repro/db"
	"repro/internal/wal"
)

func u64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func dec(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

func TestOpenDefaults(t *testing.T) {
	d, err := db.Open(db.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Engine().Name() != "PLOR" {
		t.Fatalf("default engine = %s", d.Engine().Name())
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := db.Open(db.Options{Workers: 64}); err == nil {
		t.Fatal("64 workers should exceed the limit")
	}
	if _, err := db.Open(db.Options{Workers: -1}); err == nil {
		t.Fatal("negative workers should fail")
	}
	if _, err := db.Open(db.Options{Protocol: "BOGUS"}); err == nil {
		t.Fatal("unknown protocol should fail")
	}
	// OCC protocols reject undo logging (Fig. 14 runs them only under redo).
	if _, err := db.Open(db.Options{Protocol: db.Silo, Logging: db.LogUndo}); err == nil {
		t.Fatal("Silo + undo logging should fail")
	}
	if _, err := db.Open(db.Options{Protocol: db.Plor, Logging: db.LogUndo}); err != nil {
		t.Fatalf("Plor supports undo logging: %v", err)
	}
}

func TestEveryProtocolOpens(t *testing.T) {
	all := append(db.Protocols(), db.PlorDWA, db.PlorBase, db.PlorRT)
	for _, p := range all {
		d, err := db.Open(db.Options{Protocol: p, Workers: 2})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		tbl := d.CreateTable("t", 8, db.Hashed, 16)
		if !d.Load(tbl, 1, u64(10)) {
			t.Fatalf("%s: load failed", p)
		}
		w := d.Worker(1)
		if _, err := w.Run(func(tx db.Tx) error {
			v, err := tx.Read(tbl, 1)
			if err != nil {
				return err
			}
			if dec(v) != 10 {
				t.Errorf("%s: read %d", p, dec(v))
			}
			return nil
		}, db.TxnOpts{}); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
	}
}

func TestRunRetriesToCommit(t *testing.T) {
	d, err := db.Open(db.Options{Protocol: db.Plor, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	tbl := d.CreateTable("counter", 8, db.Hashed, 4)
	d.Load(tbl, 0, u64(0))
	const workers, per = 4, 100
	var wg sync.WaitGroup
	for i := 1; i <= workers; i++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			w := d.Worker(wid)
			for j := 0; j < per; j++ {
				if _, err := w.Run(func(tx db.Tx) error {
					v, err := tx.ReadForUpdate(tbl, 0)
					if err != nil {
						return err
					}
					return tx.Update(tbl, 0, u64(dec(v)+1))
				}, db.TxnOpts{}); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	w := d.Worker(1)
	if _, err := w.Run(func(tx db.Tx) error {
		v, err := tx.Read(tbl, 0)
		if err != nil {
			return err
		}
		if dec(v) != workers*per {
			t.Errorf("counter = %d, want %d", dec(v), workers*per)
		}
		return nil
	}, db.TxnOpts{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesUserError(t *testing.T) {
	d, _ := db.Open(db.Options{Workers: 1})
	tbl := d.CreateTable("t", 8, db.Hashed, 4)
	boom := errors.New("boom")
	w := d.Worker(1)
	attempts, err := w.Run(func(tx db.Tx) error { return boom }, db.TxnOpts{})
	if !errors.Is(err, boom) || attempts != 1 {
		t.Fatalf("attempts=%d err=%v", attempts, err)
	}
	_ = tbl
}

func TestMaxAttempts(t *testing.T) {
	// Two workers fighting over one record with MaxAttempts=1 must report
	// aborts to the caller rather than spinning forever. Easiest check:
	// MaxAttempts caps attempts even when the abort would normally retry.
	d, _ := db.Open(db.Options{Protocol: db.Plor, Workers: 2})
	tbl := d.CreateTable("t", 8, db.Hashed, 4)
	d.Load(tbl, 0, u64(0))
	// Simulate: attempt always returns user abort via IsAborted? We cannot
	// force a conflict deterministically here, so just validate the knob's
	// plumbed behaviour on a clean run: one attempt, committed.
	w := d.Worker(1)
	attempts, err := w.Run(func(tx db.Tx) error {
		_, err := tx.Read(tbl, 0)
		return err
	}, db.TxnOpts{MaxAttempts: 1})
	if err != nil || attempts != 1 {
		t.Fatalf("attempts=%d err=%v", attempts, err)
	}
}

func TestWorkerBounds(t *testing.T) {
	d, _ := db.Open(db.Options{Workers: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range worker id should panic")
		}
	}()
	d.Worker(3)
}

func TestInstrumentedBreakdown(t *testing.T) {
	d, _ := db.Open(db.Options{Workers: 1, Instrument: true})
	tbl := d.CreateTable("t", 8, db.Hashed, 4)
	d.Load(tbl, 1, u64(1))
	w := d.Worker(1)
	if w.Breakdown() == nil {
		t.Fatal("instrumented worker should expose a breakdown")
	}
	w.Run(func(tx db.Tx) error { //nolint:errcheck
		_, err := tx.Read(tbl, 1)
		return err
	}, db.TxnOpts{})
	if w.Breakdown().Commits != 1 {
		t.Fatalf("commits = %d", w.Breakdown().Commits)
	}
}

// TestSyncWALCoversLocalAsyncBuffer: under DurAsync a low-traffic worker's
// commits sit in its local coalescing buffer, where DB.FlushWAL cannot
// reach them; Worker.SyncWAL must hand them off and wait for durability.
func TestSyncWALCoversLocalAsyncBuffer(t *testing.T) {
	d, err := db.Open(db.Options{
		Workers: 1, Logging: db.LogRedo, LogDurability: db.DurAsync,
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl := d.CreateTable("t", 8, db.Hashed, 4)
	d.Load(tbl, 1, u64(1))
	w := d.Worker(1)
	if _, err := w.Run(func(tx db.Tx) error {
		return tx.Update(tbl, 1, u64(2))
	}, db.TxnOpts{}); err != nil {
		t.Fatal(err)
	}
	// FlushWAL alone must not claim the locally buffered commit durable;
	// SyncWAL is the worker-side durability point.
	if err := d.FlushWAL(); err != nil {
		t.Fatal(err)
	}
	if err := w.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	rec, err := wal.Recover(wal.Redo, d.Inner().Log.Devices())
	if err != nil {
		t.Fatal(err)
	}
	got, ok := rec[tbl.ID][1]
	if !ok || dec(got.Image) != 2 {
		t.Fatalf("after SyncWAL, recovered %+v (ok=%v)", got, ok)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSyncWALNoopWithoutLogging: SyncWAL on a log-free DB must be a no-op.
func TestSyncWALNoopWithoutLogging(t *testing.T) {
	d, _ := db.Open(db.Options{Workers: 1})
	if err := d.Worker(1).SyncWAL(); err != nil {
		t.Fatal(err)
	}
}

func TestMVCCOptionValidation(t *testing.T) {
	if _, err := db.Open(db.Options{MVCC: true, NoReclaim: true}); err == nil {
		t.Fatal("MVCC + NoReclaim should fail (version GC rides the reclaimer)")
	}
	if _, err := db.Open(db.Options{Workers: 60, Scanners: 4}); err == nil {
		t.Fatal("workers+scanners over the slot limit should fail")
	}
	if _, err := db.Open(db.Options{Workers: 1, Scanners: -1}); err == nil {
		t.Fatal("negative scanners should fail")
	}
	// Scanners implies MVCC on the inner DB.
	d, err := db.Open(db.Options{Workers: 2, Scanners: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Inner().MVCCEnabled() {
		t.Fatal("Scanners > 0 must enable MVCC")
	}
}

func TestReadOnlySnapshots(t *testing.T) {
	d, err := db.Open(db.Options{Protocol: db.Plor, Workers: 2, Scanners: 1})
	if err != nil {
		t.Fatal(err)
	}
	tbl := d.CreateTable("t", 8, db.Ordered, 64)
	for k := uint64(1); k <= 5; k++ {
		d.Load(tbl, k, u64(k*10))
	}

	ro := d.ReadOnly(1)
	err = ro.View(func(tx *db.SnapTx) error {
		v, err := tx.Read(tbl, 3)
		if err != nil {
			return err
		}
		if dec(v) != 30 {
			t.Errorf("snapshot read = %d, want 30", dec(v))
		}
		if _, err := tx.Read(tbl, 99); err != db.ErrNotFound {
			t.Errorf("missing key: %v, want ErrNotFound", err)
		}
		var sum uint64
		if err := tx.Scan(tbl, 2, 4, func(k uint64, v []byte) bool {
			sum += dec(v)
			return true
		}); err != nil {
			return err
		}
		if sum != 90 {
			t.Errorf("scan sum [2,4] = %d, want 90", sum)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// A snapshot opened before a commit does not see it; one opened after
	// does, at a strictly higher timestamp.
	w := d.Worker(1)
	var before uint64
	err = ro.View(func(tx *db.SnapTx) error {
		before = tx.TS()
		if _, err := w.Run(func(wtx db.Tx) error {
			if _, err := wtx.ReadForUpdate(tbl, 3); err != nil {
				return err
			}
			return wtx.Update(tbl, 3, u64(333))
		}, db.TxnOpts{}); err != nil {
			return err
		}
		v, err := tx.Read(tbl, 3)
		if err != nil {
			return err
		}
		if dec(v) != 30 {
			t.Errorf("held snapshot saw overlapping commit: %d", dec(v))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = ro.View(func(tx *db.SnapTx) error {
		if tx.TS() <= before {
			t.Errorf("snapshot TS not advancing: %d then %d", before, tx.TS())
		}
		v, err := tx.Read(tbl, 3)
		if err != nil {
			return err
		}
		if dec(v) != 333 {
			t.Errorf("fresh snapshot read = %d, want 333", dec(v))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ro.Txns() != 3 {
		t.Fatalf("Txns = %d, want 3", ro.Txns())
	}
}
